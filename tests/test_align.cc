/**
 * @file
 * Unit and property tests for the alignment substrate: CIGAR, edit
 * distance oracles, Gotoh full/banded, Myers bit-vector, classic
 * Levenshtein automaton.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "align/cigar.hh"
#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "align/lev_automaton.hh"
#include "align/myers.hh"
#include "align/ula.hh"
#include "align/wavefront.hh"
#include "align/wfa.hh"
#include "common/rng.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len, unsigned alphabet = 4)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(alphabet)));
    return s;
}

/** Apply approximately num_edits random edits to a copy of s. */
Seq
mutateSeq(Rng &rng, const Seq &s, unsigned num_edits)
{
    Seq out = s;
    for (unsigned e = 0; e < num_edits && !out.empty(); ++e) {
        const u64 pos = rng.below(out.size());
        switch (rng.below(3)) {
          case 0: // substitution
            out[pos] = static_cast<Base>((out[pos] + 1 + rng.below(3)) & 3);
            break;
          case 1: // insertion
            out.insert(out.begin() + static_cast<i64>(pos),
                       static_cast<Base>(rng.below(4)));
            break;
          default: // deletion
            out.erase(out.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return out;
}

// ---------------------------------------------------------------- Cigar

TEST(Cigar, PushMergesRuns)
{
    Cigar c;
    c.push(CigarOp::Match, 3);
    c.push(CigarOp::Match, 2);
    c.push(CigarOp::Ins);
    ASSERT_EQ(c.elems().size(), 2u);
    EXPECT_EQ(c.elems()[0], (CigarElem{CigarOp::Match, 5}));
    EXPECT_EQ(c.str(), "5=1I");
}

TEST(Cigar, PushZeroIsNoop)
{
    Cigar c;
    c.push(CigarOp::Del, 0);
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.str(), "*");
}

TEST(Cigar, ParseRoundTrip)
{
    const std::string s = "10=2X3I4D5S";
    EXPECT_EQ(Cigar::parse(s).str(), s);
    EXPECT_TRUE(Cigar::parse("*").empty());
}

TEST(Cigar, Lengths)
{
    const Cigar c = Cigar::parse("10=2X3I4D5S");
    EXPECT_EQ(c.queryLen(), 10u + 2 + 3 + 5);
    EXPECT_EQ(c.refLen(), 10u + 2 + 4);
    EXPECT_EQ(c.alignedQueryLen(), 15u);
    EXPECT_EQ(c.editDistance(), 2u + 3 + 4);
}

TEST(Cigar, SamMStyle)
{
    EXPECT_EQ(Cigar::parse("5=1X4=2I3=").strSamM(), "10M2I3M");
    EXPECT_EQ(Cigar::parse("2S3=").strSamM(), "2S3M");
}

TEST(Cigar, AppendAndReverse)
{
    Cigar a = Cigar::parse("3=1I");
    const Cigar b = Cigar::parse("2I4=");
    a.append(b);
    EXPECT_EQ(a.str(), "3=3I4=");
    a.reverse();
    EXPECT_EQ(a.str(), "4=3I3=");
}

TEST(Cigar, RescoreAffine)
{
    const Scoring sc; // 1 / -4 / -6 / -1
    const Seq ref = encode("ACGTACGT");
    const Seq qry = encode("ACGTTACGT"); // one inserted T
    const Cigar c = Cigar::parse("4=1I4=");
    EXPECT_EQ(c.rescore(ref, qry, sc), 8 * 1 - 7);
}

// ----------------------------------------------------- Edit distance DP

TEST(EditDistance, HandCases)
{
    EXPECT_EQ(editDistance(encode(""), encode("")), 0u);
    EXPECT_EQ(editDistance(encode("ACGT"), encode("ACGT")), 0u);
    EXPECT_EQ(editDistance(encode("ACGT"), encode("")), 4u);
    EXPECT_EQ(editDistance(encode(""), encode("AC")), 2u);
    EXPECT_EQ(editDistance(encode("ACGT"), encode("AGGT")), 1u);
    EXPECT_EQ(editDistance(encode("ACGT"), encode("AACGT")), 1u);
    EXPECT_EQ(editDistance(encode("ACGT"), encode("CGT")), 1u);
    // The paper's Figure 3 example: AxBCD vs yABCD -> 2 edits.
    EXPECT_EQ(editDistance(encode("ATGCG"), encode("TAGCG")), 2u);
}

TEST(EditDistance, SymmetricProperty)
{
    Rng rng(21);
    for (int t = 0; t < 50; ++t) {
        const Seq a = randomSeq(rng, rng.below(40));
        const Seq b = randomSeq(rng, rng.below(40));
        EXPECT_EQ(editDistance(a, b), editDistance(b, a));
    }
}

TEST(EditDistance, MutationUpperBound)
{
    Rng rng(22);
    for (int t = 0; t < 50; ++t) {
        const Seq a = randomSeq(rng, 50 + rng.below(50));
        const unsigned edits = static_cast<unsigned>(rng.below(8));
        const Seq b = mutateSeq(rng, a, edits);
        EXPECT_LE(editDistance(a, b), edits);
    }
}

TEST(EditDistanceBanded, MatchesFullWhenBandCovers)
{
    Rng rng(23);
    for (int t = 0; t < 60; ++t) {
        const Seq a = randomSeq(rng, rng.below(30));
        const Seq b = randomSeq(rng, rng.below(30));
        const u64 d = editDistance(a, b);
        const auto banded =
            editDistanceBanded(a, b, std::max(a.size(), b.size()));
        ASSERT_TRUE(banded.has_value());
        EXPECT_EQ(*banded, d);
    }
}

TEST(EditDistanceBanded, RejectsLengthSkewBeyondBand)
{
    EXPECT_FALSE(
        editDistanceBanded(encode("AAAAAAAA"), encode("AA"), 2).has_value());
}

TEST(EditDistanceBounded, ExactIffWithinBound)
{
    Rng rng(24);
    for (int t = 0; t < 80; ++t) {
        const Seq a = randomSeq(rng, 20 + rng.below(40));
        const Seq b = mutateSeq(rng, a, static_cast<unsigned>(rng.below(10)));
        const u64 d = editDistance(a, b);
        for (u64 k : {u64{0}, u64{2}, u64{5}, u64{9}, u64{15}}) {
            const auto r = editDistanceBounded(a, b, k);
            if (d <= k) {
                ASSERT_TRUE(r.has_value()) << "d=" << d << " k=" << k;
                EXPECT_EQ(*r, d);
            } else {
                EXPECT_FALSE(r.has_value()) << "d=" << d << " k=" << k;
            }
        }
    }
}

// ------------------------------------------------------------- Gotoh

TEST(Gotoh, GlobalIdentical)
{
    const Scoring sc;
    const Seq s = encode("ACGTACGTAC");
    const auto r = gotohAlign(s, s, sc, AlignMode::Global);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 10);
    EXPECT_EQ(r.cigar.str(), "10=");
}

TEST(Gotoh, GlobalSingleSub)
{
    const Scoring sc;
    const auto r = gotohAlign(encode("ACGTACGT"), encode("ACGAACGT"), sc,
                              AlignMode::Global);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 7 - 4);
    EXPECT_EQ(r.cigar.str(), "3=1X4=");
}

TEST(Gotoh, GlobalAffineGapPreferredOverScatter)
{
    const Scoring sc;
    // 3-base deletion: one gap open (6) + 3 extends = -9, vs 3
    // scattered mismatches would need alignment shifts anyway.
    const auto r = gotohAlign(encode("ACGTTTACGT"), encode("ACGACGT"), sc,
                              AlignMode::Global);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 7 * 1 - (6 + 3));
    EXPECT_EQ(r.cigar.refLen(), 10u);
    EXPECT_EQ(r.cigar.queryLen(), 7u);
    EXPECT_EQ(r.cigar.editDistance(), 3u);
}

TEST(Gotoh, GlobalEmptyQuery)
{
    const Scoring sc;
    const auto r =
        gotohAlign(encode("ACG"), encode(""), sc, AlignMode::Global);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, sc.gapCost(3));
    EXPECT_EQ(r.cigar.str(), "3D");
}

TEST(Gotoh, GlobalBothEmpty)
{
    const Scoring sc;
    const auto r = gotohAlign(encode(""), encode(""), sc, AlignMode::Global);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 0);
    EXPECT_TRUE(r.cigar.empty());
}

TEST(Gotoh, UnitScoringGlobalEqualsNegEditDistance)
{
    const Scoring unit = Scoring::unitEdit();
    Rng rng(31);
    for (int t = 0; t < 60; ++t) {
        const Seq a = randomSeq(rng, rng.below(40));
        const Seq b = randomSeq(rng, rng.below(40));
        const auto r = gotohAlign(a, b, unit, AlignMode::Global);
        ASSERT_TRUE(r.valid);
        EXPECT_EQ(-r.score, static_cast<i32>(editDistance(a, b)));
    }
}

TEST(Gotoh, CigarConsistencyProperty)
{
    const Scoring sc;
    Rng rng(32);
    for (int t = 0; t < 60; ++t) {
        const Seq ref = randomSeq(rng, 20 + rng.below(60));
        const Seq qry = mutateSeq(rng, ref,
                                  static_cast<unsigned>(rng.below(6)));
        for (AlignMode mode :
             {AlignMode::Global, AlignMode::Local, AlignMode::Extend}) {
            const auto r = gotohAlign(ref, qry, sc, mode);
            ASSERT_TRUE(r.valid);
            EXPECT_EQ(r.cigar.queryLen(), qry.size());
            EXPECT_EQ(r.cigar.refLen(), r.refEnd - r.refBegin);
            // Re-scoring the aligned part reproduces the DP score.
            const Seq ref_window(ref.begin() + static_cast<i64>(r.refBegin),
                                 ref.begin() + static_cast<i64>(r.refEnd));
            Cigar aligned;
            for (const auto &e : r.cigar.elems())
                if (e.op != CigarOp::SoftClip)
                    aligned.push(e.op, e.len);
            const Seq qry_aligned(qry.begin() + static_cast<i64>(r.qryBegin),
                                  qry.begin() + static_cast<i64>(r.qryEnd));
            EXPECT_EQ(aligned.rescore(ref_window, qry_aligned, sc), r.score)
                << "mode=" << static_cast<int>(mode)
                << " cigar=" << r.cigar.str();
        }
    }
}

TEST(Gotoh, ExtendClipsToAnchorWhenNothingMatches)
{
    const Scoring sc;
    // Completely different strings: best extension is empty, fully
    // soft-clipped, score 0.
    const auto r = gotohAlign(encode("AAAAAAAA"), encode("GGGGGGGG"), sc,
                              AlignMode::Extend);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 0);
    EXPECT_EQ(r.qryEnd, 0u);
    EXPECT_EQ(r.cigar.str(), "8S");
}

TEST(Gotoh, ExtendClipsNoisyTail)
{
    const Scoring sc;
    // First 10 match, tail completely diverges: clipping should stop
    // the alignment after the matching prefix.
    const Seq ref = encode("ACGTACGTACTTTTTTTT");
    const Seq qry = encode("ACGTACGTACGGGGGGGG");
    const auto r = gotohAlign(ref, qry, sc, AlignMode::Extend);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 10); // the ACGTACGTAC prefix
    EXPECT_EQ(r.qryBegin, 0u);
    EXPECT_EQ(r.qryEnd, 10u);
}

TEST(Gotoh, LocalFindsEmbeddedMatch)
{
    const Scoring sc;
    const Seq ref = encode("TTTTTACGTACGTTTTTT");
    const Seq qry = encode("GGACGTACGTGG");
    const auto r = gotohAlign(ref, qry, sc, AlignMode::Local);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 8); // the embedded ACGTACGT
    EXPECT_EQ(r.qryBegin, 2u);
}

TEST(GotohBanded, MatchesFullWhenBandCovers)
{
    const Scoring sc;
    Rng rng(33);
    for (int t = 0; t < 50; ++t) {
        const Seq ref = randomSeq(rng, 10 + rng.below(50));
        const Seq qry = mutateSeq(rng, ref,
                                  static_cast<unsigned>(rng.below(6)));
        const u32 band =
            static_cast<u32>(std::max(ref.size(), qry.size()));
        for (AlignMode mode :
             {AlignMode::Global, AlignMode::Local, AlignMode::Extend}) {
            const auto full = gotohAlign(ref, qry, sc, mode);
            const auto banded = gotohBanded(ref, qry, sc, mode, band);
            ASSERT_TRUE(full.valid);
            ASSERT_TRUE(banded.valid);
            EXPECT_EQ(banded.score, full.score)
                << "mode=" << static_cast<int>(mode);
        }
    }
}

TEST(GotohBanded, ExtendMatchesFullForSmallEditReads)
{
    // With few edits, a generous band preserves the optimum: this is
    // the K-band assumption SillaX relies on (Section IV).
    const Scoring sc;
    Rng rng(34);
    for (int t = 0; t < 50; ++t) {
        const Seq ref = randomSeq(rng, 101);
        const unsigned edits = static_cast<unsigned>(rng.below(5));
        const Seq qry = mutateSeq(rng, ref, edits);
        const auto full = gotohAlign(ref, qry, sc, AlignMode::Extend);
        const auto banded = gotohBanded(ref, qry, sc, AlignMode::Extend, 20);
        ASSERT_TRUE(banded.valid);
        EXPECT_EQ(banded.score, full.score);
    }
}

TEST(GotohBanded, GlobalInvalidWhenBandTooSmall)
{
    const Scoring sc;
    const auto r = gotohBanded(encode("AAAAAAAAAA"), encode("AA"), sc,
                               AlignMode::Global, 3);
    EXPECT_FALSE(r.valid);
}

TEST(GotohBanded, ScoreOnlyMatchesTracebackVersion)
{
    const Scoring sc;
    Rng rng(35);
    for (int t = 0; t < 50; ++t) {
        const Seq ref = randomSeq(rng, 50 + rng.below(100));
        const Seq qry = mutateSeq(rng, ref,
                                  static_cast<unsigned>(rng.below(8)));
        for (u32 band : {5u, 12u, 40u}) {
            const auto full = gotohBanded(ref, qry, sc, AlignMode::Extend,
                                          band);
            const i32 score = gotohBandedScoreOnly(ref, qry, sc, band);
            ASSERT_TRUE(full.valid);
            EXPECT_EQ(score, full.score) << "band=" << band;
        }
    }
}

// ------------------------------------------------------------- Myers

TEST(Myers, HandCases)
{
    EXPECT_EQ(myersEditDistance(encode(""), encode("ACG")), 3u);
    EXPECT_EQ(myersEditDistance(encode("ACG"), encode("")), 3u);
    EXPECT_EQ(myersEditDistance(encode("ACGT"), encode("ACGT")), 0u);
    EXPECT_EQ(myersEditDistance(encode("ACGT"), encode("AGT")), 1u);
}

class MyersRandomTest : public ::testing::TestWithParam<
                            std::tuple<size_t, size_t>>
{};

TEST_P(MyersRandomTest, MatchesDp)
{
    const auto [pat_len, txt_len] = GetParam();
    Rng rng(1000 + pat_len * 131 + txt_len);
    for (int t = 0; t < 20; ++t) {
        const Seq p = randomSeq(rng, pat_len);
        const Seq x = t % 2 == 0
                          ? randomSeq(rng, txt_len)
                          : mutateSeq(rng, p, static_cast<unsigned>(
                                                  rng.below(6)));
        EXPECT_EQ(myersEditDistance(p, x), editDistance(p, x))
            << "pat=" << decode(p) << " txt=" << decode(x);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, MyersRandomTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(5, 9),
                      std::make_tuple(63, 64), std::make_tuple(64, 64),
                      std::make_tuple(65, 70), std::make_tuple(101, 101),
                      std::make_tuple(128, 130), std::make_tuple(200, 150),
                      std::make_tuple(300, 300)));

// ----------------------------------------------- Levenshtein automaton

TEST(LevAutomaton, StateCountIsKTimesN)
{
    const LevenshteinAutomaton la(encode("ACGTACGT"), 3);
    EXPECT_EQ(la.stateCount(), 9u * 4u);
}

TEST(LevAutomaton, AcceptsExactPattern)
{
    LevenshteinAutomaton la(encode("ACGTAC"), 2);
    const auto d = la.distanceTo(encode("ACGTAC"));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 0u);
}

TEST(LevAutomaton, RejectsBeyondK)
{
    LevenshteinAutomaton la(encode("AAAAAA"), 2);
    EXPECT_FALSE(la.distanceTo(encode("TTTTTT")).has_value());
}

class LevAutomatonRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32>>
{};

TEST_P(LevAutomatonRandomTest, MatchesBoundedDp)
{
    const auto [len, k] = GetParam();
    Rng rng(2000 + len * 17 + k);
    for (int t = 0; t < 25; ++t) {
        const Seq pat = randomSeq(rng, len);
        const Seq txt = mutateSeq(rng, pat,
                                  static_cast<unsigned>(rng.below(k + 3)));
        LevenshteinAutomaton la(pat, k);
        const auto got = la.distanceTo(txt);
        const u64 d = editDistance(pat, txt);
        if (d <= k) {
            ASSERT_TRUE(got.has_value())
                << "pat=" << decode(pat) << " txt=" << decode(txt)
                << " d=" << d;
            EXPECT_EQ(*got, d);
        } else {
            EXPECT_FALSE(got.has_value());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevAutomatonRandomTest,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 63, 64, 65, 100),
                       ::testing::Values<u32>(0, 1, 2, 4, 8)));

// ---------------------------------------------------------- wavefront

TEST(Wavefront, HandCases)
{
    EXPECT_EQ(wavefrontEditDistance(encode(""), encode("")), 0u);
    EXPECT_EQ(wavefrontEditDistance(encode(""), encode("AC")), 2u);
    EXPECT_EQ(wavefrontEditDistance(encode("ACG"), encode("")), 3u);
    EXPECT_EQ(wavefrontEditDistance(encode("ACGT"), encode("ACGT")), 0u);
    EXPECT_EQ(wavefrontEditDistance(encode("ACGT"), encode("AGGT")), 1u);
    EXPECT_EQ(wavefrontEditDistance(encode("ATGCG"), encode("TAGCG")),
              2u);
}

class WavefrontRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{};

TEST_P(WavefrontRandomTest, MatchesDp)
{
    const auto [la, lb] = GetParam();
    Rng rng(4000 + la * 31 + lb);
    for (int t = 0; t < 25; ++t) {
        const Seq a = randomSeq(rng, la);
        const Seq b = t % 2 == 0
                          ? randomSeq(rng, lb)
                          : mutateSeq(rng, a, static_cast<unsigned>(
                                                  rng.below(8)));
        EXPECT_EQ(wavefrontEditDistance(a, b), editDistance(a, b))
            << decode(a) << " vs " << decode(b);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, WavefrontRandomTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(7, 11),
                      std::make_tuple(40, 40), std::make_tuple(101, 101),
                      std::make_tuple(150, 80),
                      std::make_tuple(300, 305)));

TEST(Wavefront, BoundedSemantics)
{
    Rng rng(4100);
    for (int t = 0; t < 40; ++t) {
        const Seq a = randomSeq(rng, 30 + rng.below(50));
        const Seq b = mutateSeq(rng, a, static_cast<unsigned>(rng.below(10)));
        const u64 d = editDistance(a, b);
        for (u64 k : {u64{0}, u64{3}, u64{7}, u64{12}}) {
            const auto r = wavefrontEditDistanceBounded(a, b, k);
            if (d <= k) {
                ASSERT_TRUE(r.has_value());
                EXPECT_EQ(*r, d);
            } else {
                EXPECT_FALSE(r.has_value());
            }
        }
    }
}

TEST(Wavefront, AgreesWithSillaPhilosophy)
{
    // The wavefront's greedy diagonal slide is the software dual of
    // Silla's match self-loop: both only branch on mismatches.
    Rng rng(4200);
    const Seq a = randomSeq(rng, 5000);
    const Seq b = mutateSeq(rng, a, 10);
    const u64 d = wavefrontEditDistance(a, b);
    EXPECT_LE(d, 10u);
    EXPECT_EQ(d, myersEditDistance(a, b));
}

// -------------------------------------------------- gap-affine WFA

TEST(Wfa, UnitPenaltiesEqualEditDistance)
{
    // mismatch 1, open 0, extend 1 degenerates WFA to Levenshtein.
    const WfaPenalties unit{1, 0, 1};
    Rng rng(4300);
    for (int t = 0; t < 40; ++t) {
        const Seq a = randomSeq(rng, 1 + rng.below(60));
        const Seq b = t % 2 == 0
                          ? randomSeq(rng, 1 + rng.below(60))
                          : mutateSeq(rng, a, static_cast<unsigned>(
                                                  rng.below(6)));
        const auto p = wfaGlobalPenalty(a, b, unit, a.size() + b.size());
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(*p, editDistance(a, b));
    }
}

TEST(Wfa, BoundedPenaltyReturnsNulloptBeyondCap)
{
    const WfaPenalties p{4, 6, 2};
    const auto r =
        wfaGlobalPenalty(encode("AAAA"), encode("TTTT"), p, 3);
    EXPECT_FALSE(r.has_value());
}

TEST(Wfa, GlobalScoreMatchesGotoh)
{
    Rng rng(4400);
    for (int t = 0; t < 60; ++t) {
        Scoring sc;
        sc.match = 1 + static_cast<i32>(rng.below(2));
        sc.mismatch = 1 + static_cast<i32>(rng.below(5));
        sc.gapOpen = static_cast<i32>(rng.below(7));
        sc.gapExtend = 1 + static_cast<i32>(rng.below(3));
        const Seq a = randomSeq(rng, 1 + rng.below(80));
        const Seq b = t % 2 == 0
                          ? mutateSeq(rng, a, static_cast<unsigned>(
                                                  rng.below(8)))
                          : randomSeq(rng, 1 + rng.below(80));
        if (b.empty())
            continue;
        const auto gotoh = gotohAlign(a, b, sc, AlignMode::Global);
        EXPECT_EQ(wfaGlobalScore(a, b, sc), gotoh.score)
            << "a=" << decode(a) << " b=" << decode(b)
            << " scheme=" << sc.match << "/" << sc.mismatch << "/"
            << sc.gapOpen << "/" << sc.gapExtend;
    }
}

TEST(Wfa, PenaltyScalesWithDivergenceNotLength)
{
    // The WFA promise (shared with Silla): cost tracks divergence.
    Rng rng(4500);
    const Seq a = randomSeq(rng, 2000);
    const Seq b = mutateSeq(rng, a, 4);
    const WfaPenalties p{4, 6, 2};
    const auto r = wfaGlobalPenalty(a, b, p, 400);
    ASSERT_TRUE(r.has_value());
    EXPECT_LE(*r, 4u * (6 + 2 + 4));
}

// ------------------------------------- universal Levenshtein automaton

TEST(Ula, HandCases)
{
    UniversalLevAutomaton ula(2);
    EXPECT_EQ(ula.distance(encode("ACGT"), encode("ACGT")), 0u);
    EXPECT_EQ(ula.distance(encode("ACGT"), encode("AGGT")), 1u);
    EXPECT_EQ(ula.distance(encode("ACGT"), encode("ACT")), 1u);
    EXPECT_EQ(ula.distance(encode("ACT"), encode("ACGT")), 1u);
    EXPECT_EQ(ula.distance(encode("ATGCG"), encode("TAGCG")), 2u);
    EXPECT_FALSE(
        ula.distance(encode("AAAA"), encode("TTTT")).has_value());
}

TEST(Ula, EmptyAndDegenerate)
{
    UniversalLevAutomaton ula(2);
    EXPECT_EQ(ula.distance(encode(""), encode("")), 0u);
    EXPECT_EQ(ula.distance(encode("AC"), encode("")), 2u);
    EXPECT_EQ(ula.distance(encode(""), encode("AG")), 2u);
    EXPECT_FALSE(ula.distance(encode("AAA"), encode("")).has_value());
}

class UlaRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32>>
{};

TEST_P(UlaRandomTest, MatchesBoundedDp)
{
    const auto [len, k] = GetParam();
    Rng rng(3000 + len * 11 + k);
    UniversalLevAutomaton ula(k);
    for (int t = 0; t < 25; ++t) {
        const Seq pat = randomSeq(rng, len);
        const Seq txt = t % 3 == 0
                            ? randomSeq(rng, len)
                            : mutateSeq(rng, pat, static_cast<unsigned>(
                                                      rng.below(k + 3)));
        const auto oracle = editDistanceBounded(pat, txt, k);
        const auto got = ula.distance(pat, txt);
        ASSERT_EQ(got.has_value(), oracle.has_value())
            << "pat=" << decode(pat) << " txt=" << decode(txt)
            << " k=" << k;
        if (oracle) {
            EXPECT_EQ(static_cast<u64>(*got), *oracle);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UlaRandomTest,
    ::testing::Combine(::testing::Values<size_t>(1, 6, 20, 64, 101),
                       ::testing::Values<u32>(0, 1, 2, 4, 6)));

TEST(Ula, StringIndependentReuse)
{
    UniversalLevAutomaton ula(2);
    EXPECT_EQ(ula.distance(encode("ACGTACGT"), encode("ACGTACGT")), 0u);
    EXPECT_EQ(ula.distance(encode("TTTT"), encode("TTAT")), 1u);
    EXPECT_EQ(ula.distance(encode("ACGTACGT"), encode("ACGTACGT")), 0u);
}

TEST(Ula, FanoutGrowsWithKUnlikeSilla)
{
    // The paper's motivation for Silla: ULA deletion edges jump up
    // to K positions, so its communication is non-local.
    Rng rng(3100);
    const Seq pat = randomSeq(rng, 64);
    const Seq txt = mutateSeq(rng, pat, 6);
    u32 prev_reach = 0;
    for (u32 k : {2u, 4u, 8u}) {
        UniversalLevAutomaton ula(k);
        ula.distance(pat, txt);
        EXPECT_GE(ula.lastMaxDeltaReach(), prev_reach);
        prev_reach = ula.lastMaxDeltaReach();
    }
    EXPECT_GT(prev_reach, 1u); // non-local jumps actually occur
}

TEST(LevAutomaton, ReusableAcrossTexts)
{
    LevenshteinAutomaton la(encode("ACGTACGTAC"), 2);
    EXPECT_TRUE(la.distanceTo(encode("ACGTACGTAC")).has_value());
    EXPECT_TRUE(la.distanceTo(encode("ACGTTCGTAC")).has_value());
    EXPECT_FALSE(la.distanceTo(encode("TTTTTTTTTT")).has_value());
    // And again exact after rejections (reset correctness).
    const auto d = la.distanceTo(encode("ACGTACGTAC"));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 0u);
}

} // namespace
} // namespace genax
