/**
 * @file
 * Property tests for the Silla automata family: indel Silla, explicit
 * 3D Silla, collapsed Silla edit machine, scoring machine and
 * traceback machine — each verified against the DP oracles.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "common/rng.hh"
#include "silla/indel_silla.hh"
#include "silla/silla_edit.hh"
#include "silla/silla_score.hh"
#include "silla/silla_traceback.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

Seq
mutateSeq(Rng &rng, const Seq &s, unsigned num_edits)
{
    Seq out = s;
    for (unsigned e = 0; e < num_edits && !out.empty(); ++e) {
        const u64 pos = rng.below(out.size());
        switch (rng.below(3)) {
          case 0:
            out[pos] = static_cast<Base>((out[pos] + 1 + rng.below(3)) & 3);
            break;
          case 1:
            out.insert(out.begin() + static_cast<i64>(pos),
                       static_cast<Base>(rng.below(4)));
            break;
          default:
            out.erase(out.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return out;
}

/** Indel-only distance oracle: n + m - 2 * LCS(a, b). */
u64
indelDistanceOracle(const Seq &a, const Seq &b)
{
    const size_t n = a.size(), m = b.size();
    std::vector<u64> prev(m + 1, 0), cur(m + 1, 0);
    for (size_t i = 1; i <= n; ++i) {
        for (size_t j = 1; j <= m; ++j) {
            cur[j] = a[i - 1] == b[j - 1]
                         ? prev[j - 1] + 1
                         : std::max(prev[j], cur[j - 1]);
        }
        std::swap(prev, cur);
    }
    return n + m - 2 * prev[m];
}

// -------------------------------------------------------- state counts

TEST(SillaStateCount, Formulas)
{
    EXPECT_EQ(SillaStateCount::indel(2), 6u);    // (K+1)(K+2)/2
    EXPECT_EQ(SillaStateCount::collapsed(2), 13u); // 3*(K+1)^2/2
    // 1,681 PEs for K=40 as quoted in Section VIII-A (scoring grid).
    SillaScore score(40, Scoring{});
    EXPECT_EQ(score.peCount(), 1681u);
    // Levenshtein automaton grows with pattern length, Silla doesn't.
    EXPECT_EQ(SillaStateCount::levenshtein(2, 100), 303u);
}

// --------------------------------------------------------- indel Silla

TEST(IndelSilla, HandCases)
{
    IndelSilla silla(4);
    EXPECT_EQ(silla.distance(encode("ACGT"), encode("ACGT")), 0u);
    // One deletion from R.
    EXPECT_EQ(silla.distance(encode("ACGT"), encode("ACT")), 1u);
    // One insertion into Q.
    EXPECT_EQ(silla.distance(encode("ACT"), encode("ACGT")), 1u);
    // Figure 3a: AxBCD vs yABCD aligns with one ins + one del.
    EXPECT_EQ(silla.distance(encode("ATGCG"), encode("TAGCG")), 2u);
    // Substitution costs 2 in indel-only mode.
    EXPECT_EQ(silla.distance(encode("AAAA"), encode("AATA")), 2u);
}

TEST(IndelSilla, EmptyStrings)
{
    IndelSilla silla(3);
    EXPECT_EQ(silla.distance(encode(""), encode("")), 0u);
    EXPECT_EQ(silla.distance(encode("AC"), encode("")), 2u);
    EXPECT_EQ(silla.distance(encode(""), encode("ACG")), 3u);
    EXPECT_FALSE(silla.distance(encode(""), encode("ACGT")).has_value());
}

TEST(IndelSilla, StringIndependenceReuse)
{
    IndelSilla silla(6);
    for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(silla.distance(encode("ACGTACGT"), encode("ACGTACGT")),
                  0u);
        EXPECT_EQ(silla.distance(encode("TTTT"), encode("TTTTTT")), 2u);
    }
}

class IndelSillaRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32>>
{};

TEST_P(IndelSillaRandomTest, MatchesLcsOracle)
{
    const auto [len, k] = GetParam();
    Rng rng(100 + len * 7 + k);
    IndelSilla silla(k);
    for (int t = 0; t < 25; ++t) {
        const Seq a = randomSeq(rng, len);
        const Seq b = mutateSeq(rng, a,
                                static_cast<unsigned>(rng.below(k + 2)));
        const u64 d = indelDistanceOracle(a, b);
        const auto got = silla.distance(a, b);
        if (d <= k) {
            ASSERT_TRUE(got.has_value())
                << "a=" << decode(a) << " b=" << decode(b) << " d=" << d;
            EXPECT_EQ(*got, d);
        } else {
            EXPECT_FALSE(got.has_value());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndelSillaRandomTest,
    ::testing::Combine(::testing::Values<size_t>(1, 8, 25, 60),
                       ::testing::Values<u32>(0, 1, 2, 4, 8)));

TEST(IndelSilla, LcsLengthMatchesDpOracle)
{
    // Section VIII-C: Silla extends to the LCS problem.
    Rng rng(150);
    IndelSilla silla(12);
    for (int t = 0; t < 40; ++t) {
        const Seq a = randomSeq(rng, 10 + rng.below(40));
        const Seq b = mutateSeq(rng, a, static_cast<unsigned>(rng.below(6)));
        const u64 d = indelDistanceOracle(a, b);
        const u64 lcs = (a.size() + b.size() - d) / 2;
        const auto got = silla.lcsLength(a, b);
        if (d <= 12) {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, lcs);
        } else {
            EXPECT_FALSE(got.has_value());
        }
    }
}

TEST(IndelSilla, LcsHandCases)
{
    IndelSilla silla(8);
    EXPECT_EQ(silla.lcsLength(encode("ACGT"), encode("ACGT")), 4u);
    EXPECT_EQ(silla.lcsLength(encode("ACGT"), encode("AGT")), 3u);
    EXPECT_EQ(silla.lcsLength(encode("AAAA"), encode("TTTT")), 0u);
    EXPECT_EQ(silla.lcsLength(encode(""), encode("ACG")), 0u);
}

// -------------------------------------------------------- edit machine

TEST(SillaEdit, HandCases)
{
    SillaEdit silla(3);
    EXPECT_EQ(silla.distance(encode("ACGT"), encode("ACGT")), 0u);
    EXPECT_EQ(silla.distance(encode("ACGT"), encode("AGGT")), 1u);
    EXPECT_EQ(silla.distance(encode("ACGT"), encode("ACT")), 1u);
    EXPECT_EQ(silla.distance(encode("ACT"), encode("ACGT")), 1u);
    // Figure 3b: two substitutions align AxBCD with yABCD.
    EXPECT_EQ(silla.distance(encode("ATGCG"), encode("TAGCG")), 2u);
    EXPECT_FALSE(
        silla.distance(encode("AAAAAA"), encode("TTTTTT")).has_value());
}

TEST(SillaEdit, EmptyAndDegenerate)
{
    SillaEdit silla(2);
    EXPECT_EQ(silla.distance(encode(""), encode("")), 0u);
    EXPECT_EQ(silla.distance(encode("A"), encode("")), 1u);
    EXPECT_EQ(silla.distance(encode(""), encode("AG")), 2u);
    EXPECT_FALSE(silla.distance(encode("AAA"), encode("")).has_value());
    SillaEdit zero(0);
    EXPECT_EQ(zero.distance(encode("ACG"), encode("ACG")), 0u);
    EXPECT_FALSE(zero.distance(encode("ACG"), encode("ACC")).has_value());
}

class SillaEditRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32>>
{};

TEST_P(SillaEditRandomTest, MatchesBoundedDp)
{
    const auto [len, k] = GetParam();
    Rng rng(200 + len * 13 + k);
    SillaEdit silla(k);
    for (int t = 0; t < 25; ++t) {
        const Seq a = randomSeq(rng, len);
        const Seq b = t % 3 == 0
                          ? randomSeq(rng, len > 2 ? len - 2 : 0)
                          : mutateSeq(rng, a, static_cast<unsigned>(
                                                  rng.below(k + 3)));
        const auto oracle = editDistanceBounded(a, b, k);
        const auto got = silla.distance(a, b);
        ASSERT_EQ(got.has_value(), oracle.has_value())
            << "a=" << decode(a) << " b=" << decode(b) << " k=" << k;
        if (oracle) {
            EXPECT_EQ(static_cast<u64>(*got), *oracle);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SillaEditRandomTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 5, 20, 64, 101,
                                                 200),
                       ::testing::Values<u32>(0, 1, 2, 3, 4, 8, 12,
                                              16)));

TEST(SillaEdit, CollapseEquivalentToExplicit3d)
{
    // Section III-C: the two-layer collapsed design is equivalent to
    // the explicit K+1-layer 3D automaton.
    Rng rng(300);
    for (u32 k : {0u, 1u, 2u, 4u, 6u}) {
        SillaEdit collapsed(k);
        Silla3D explicit3d(k);
        for (int t = 0; t < 20; ++t) {
            const Seq a = randomSeq(rng, 5 + rng.below(40));
            const Seq b =
                mutateSeq(rng, a, static_cast<unsigned>(rng.below(k + 3)));
            EXPECT_EQ(collapsed.distance(a, b), explicit3d.distance(a, b))
                << "k=" << k << " a=" << decode(a) << " b=" << decode(b);
        }
    }
}

TEST(SillaEdit, LinearCycleCount)
{
    // Silla processes strings in O(N) cycles (Section IV-A).
    SillaEdit silla(4);
    Rng rng(301);
    const Seq a = randomSeq(rng, 400);
    const Seq b = mutateSeq(rng, a, 3);
    ASSERT_TRUE(silla.distance(a, b).has_value());
    EXPECT_LE(silla.lastStats().cycles, std::min(a.size(), b.size()) + 4 + 1);
}

TEST(SillaEdit, StateCountIndependentOfStringLength)
{
    SillaEdit small(8);
    const u64 states = small.stateCount();
    EXPECT_EQ(states, SillaStateCount::collapsed(8));
    // Peak active states never exceeds the grid size even for long
    // strings (string independence).
    Rng rng(302);
    const Seq a = randomSeq(rng, 1000);
    const Seq b = mutateSeq(rng, a, 5);
    small.distance(a, b);
    EXPECT_LE(small.lastStats().peakActive, states);
}

// ------------------------------------------------------ scoring machine

class SillaScoreRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32, unsigned>>
{};

TEST_P(SillaScoreRandomTest, MatchesBandedGotohExtend)
{
    const auto [len, k, edits] = GetParam();
    const Scoring sc;
    Rng rng(400 + len * 3 + k * 17 + edits);
    SillaScore machine(k, sc);
    for (int t = 0; t < 20; ++t) {
        const Seq ref = randomSeq(rng, len);
        const Seq qry = mutateSeq(rng, ref, edits);
        const auto oracle = gotohBanded(ref, qry, sc, AlignMode::Extend, k);
        const auto got = machine.run(ref, qry);
        ASSERT_TRUE(oracle.valid);
        EXPECT_EQ(got.best, oracle.score)
            << "ref=" << decode(ref) << " qry=" << decode(qry);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SillaScoreRandomTest,
    ::testing::Values(std::make_tuple(20, 8, 0u),
                      std::make_tuple(20, 8, 2u),
                      std::make_tuple(50, 10, 3u),
                      std::make_tuple(101, 12, 0u),
                      std::make_tuple(101, 12, 3u),
                      std::make_tuple(101, 20, 6u),
                      std::make_tuple(150, 16, 5u),
                      std::make_tuple(101, 40, 12u),
                      std::make_tuple(250, 24, 10u)));

TEST(SillaScore, MatchesFullExtendWhenKCoversEverything)
{
    const Scoring sc;
    Rng rng(401);
    for (int t = 0; t < 30; ++t) {
        const Seq ref = randomSeq(rng, 12);
        const Seq qry = randomSeq(rng, 10 + rng.below(5));
        SillaScore machine(16, sc);
        const auto full = gotohAlign(ref, qry, sc, AlignMode::Extend);
        const auto got = machine.run(ref, qry);
        EXPECT_EQ(got.best, full.score)
            << "ref=" << decode(ref) << " qry=" << decode(qry);
    }
}

TEST(SillaScore, PerfectMatchScoresFullLength)
{
    const Scoring sc;
    SillaScore machine(8, sc);
    Rng rng(402);
    const Seq s = randomSeq(rng, 101);
    const auto got = machine.run(s, s);
    EXPECT_EQ(got.best, 101);
    EXPECT_EQ(got.refEnd, 101u);
    EXPECT_EQ(got.qryEnd, 101u);
    EXPECT_EQ(got.winnerI, 0u);
    EXPECT_EQ(got.winnerD, 0u);
}

TEST(SillaScore, HopelessPairFullyClips)
{
    const Scoring sc;
    SillaScore machine(4, sc);
    const auto got = machine.run(encode("AAAAAAAAAA"),
                                 encode("GGGGGGGGGG"));
    EXPECT_EQ(got.best, 0);
    EXPECT_EQ(got.qryEnd, 0u);
}

TEST(SillaScore, StreamCyclesLinearInLength)
{
    const Scoring sc;
    SillaScore machine(8, sc);
    Rng rng(403);
    const Seq s = randomSeq(rng, 500);
    const auto got = machine.run(s, s);
    EXPECT_EQ(got.streamCycles, 500u + 8 + 1);
}

// ---------------------------------------------------- traceback machine

class SillaTracebackRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32, unsigned>>
{};

TEST_P(SillaTracebackRandomTest, ScoreAndCigarConsistent)
{
    const auto [len, k, edits] = GetParam();
    const Scoring sc;
    Rng rng(500 + len * 5 + k * 7 + edits);
    SillaTraceback machine(k, sc);
    SillaScore score_machine(k, sc);
    for (int t = 0; t < 20; ++t) {
        const Seq ref = randomSeq(rng, len);
        const Seq qry = mutateSeq(rng, ref, edits);
        const auto got = machine.align(ref, qry);

        // Score agrees with the scoring machine and the DP oracle.
        EXPECT_EQ(got.score, score_machine.run(ref, qry).best);
        const auto oracle = gotohBanded(ref, qry, sc, AlignMode::Extend, k);
        EXPECT_EQ(got.score, oracle.score);

        // The recovered path is a real alignment achieving the score.
        EXPECT_EQ(got.cigar.queryLen(), qry.size());
        EXPECT_EQ(got.cigar.refLen(), got.refEnd);
        Cigar aligned;
        for (const auto &e : got.cigar.elems())
            if (e.op != CigarOp::SoftClip)
                aligned.push(e.op, e.len);
        const Seq ref_win(ref.begin(),
                          ref.begin() + static_cast<i64>(got.refEnd));
        const Seq qry_win(qry.begin(),
                          qry.begin() + static_cast<i64>(got.qryEnd));
        EXPECT_EQ(aligned.rescore(ref_win, qry_win, sc), got.score)
            << "cigar=" << got.cigar.str() << " ref=" << decode(ref)
            << " qry=" << decode(qry);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SillaTracebackRandomTest,
    ::testing::Values(std::make_tuple(20, 8, 0u),
                      std::make_tuple(20, 8, 2u),
                      std::make_tuple(50, 10, 3u),
                      std::make_tuple(101, 12, 2u),
                      std::make_tuple(101, 20, 5u),
                      std::make_tuple(101, 20, 8u),
                      std::make_tuple(150, 16, 6u),
                      std::make_tuple(101, 40, 10u),
                      std::make_tuple(300, 24, 12u),
                      std::make_tuple(33, 5, 4u)));

TEST(SillaTraceback, PerfectMatchNoReruns)
{
    const Scoring sc;
    SillaTraceback machine(8, sc);
    Rng rng(501);
    const Seq s = randomSeq(rng, 101);
    const auto got = machine.align(s, s);
    EXPECT_EQ(got.score, 101);
    EXPECT_EQ(got.cigar.str(), "101=");
    EXPECT_EQ(got.stats.reruns, 0u);
}

TEST(SillaTraceback, SingleSubstitution)
{
    const Scoring sc;
    SillaTraceback machine(8, sc);
    Seq ref = encode("ACGTACGTACGTACGTACGT");
    Seq qry = ref;
    qry[10] = static_cast<Base>((qry[10] + 1) & 3);
    const auto got = machine.align(ref, qry);
    EXPECT_EQ(got.score, 19 - 4);
    EXPECT_EQ(got.cigar.str(), "10=1X9=");
}

TEST(SillaTraceback, SingleInsertionAndDeletion)
{
    const Scoring sc;
    SillaTraceback machine(8, sc);
    const Seq ref = encode("ACGTACGTACGTACGTACGT");
    Seq qry_ins = ref;
    qry_ins.insert(qry_ins.begin() + 8, kBaseT);
    auto got = machine.align(ref, qry_ins);
    EXPECT_EQ(got.score, 20 - 7);
    EXPECT_EQ(got.cigar.editDistance(), 1u);

    Seq qry_del = ref;
    qry_del.erase(qry_del.begin() + 8);
    got = machine.align(ref, qry_del);
    EXPECT_EQ(got.score, 19 - 7);
    EXPECT_EQ(got.cigar.editDistance(), 1u);
}

TEST(SillaTraceback, HopelessPairFullyClips)
{
    const Scoring sc;
    SillaTraceback machine(4, sc);
    const auto got =
        machine.align(encode("AAAAAAAA"), encode("GGGGGGGG"));
    EXPECT_EQ(got.score, 0);
    EXPECT_EQ(got.cigar.str(), "8S");
}

TEST(SillaTraceback, LongGapRun)
{
    const Scoring sc;
    SillaTraceback machine(10, sc);
    // Non-periodic reference so the deletion is unambiguous.
    Rng rng(503);
    const Seq ref = randomSeq(rng, 40);
    Seq qry = ref;
    // 4-base deletion in the middle of the read.
    qry.erase(qry.begin() + 12, qry.begin() + 16);
    const auto got = machine.align(ref, qry);
    // Optimal is at least the single-gap alignment; with a random
    // reference it is exactly that.
    EXPECT_EQ(got.score, 36 - (6 + 4));
    EXPECT_EQ(got.cigar.editDistance(), 4u);
    // Validity: exactly one 4D run.
    bool saw_del = false;
    for (const auto &e : got.cigar.elems()) {
        if (e.op == CigarOp::Del) {
            EXPECT_EQ(e.len, 4u);
            saw_del = true;
        }
    }
    EXPECT_TRUE(saw_del);
}

TEST(SillaTraceback, RerunStatisticsAreBounded)
{
    // Reruns are possible but must stay rare for realistic read
    // workloads (the paper measures 7.59%).
    const Scoring sc;
    SillaTraceback machine(16, sc);
    Rng rng(502);
    u64 total = 0, with_rerun = 0;
    for (int t = 0; t < 200; ++t) {
        const Seq ref = randomSeq(rng, 101);
        const Seq qry = mutateSeq(rng, ref,
                                  static_cast<unsigned>(rng.below(5)));
        const auto got = machine.align(ref, qry);
        ++total;
        with_rerun += got.stats.reruns > 0;
        EXPECT_LT(got.stats.reruns, 50u);
    }
    EXPECT_LT(static_cast<double>(with_rerun) / static_cast<double>(total),
              0.5);
}

} // namespace
} // namespace genax
