/**
 * @file
 * Tests for the seeding accelerator: k-mer index, CAM model, SMEM
 * engine (with all optimization ablations) and genome segmentation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include <filesystem>
#include <fstream>

#include "common/faultinject.hh"
#include "common/rng.hh"
#include "readsim/refgen.hh"
#include "seed/cam.hh"
#include "seed/flat_kmer_index.hh"
#include "seed/kmer_index.hh"
#include "seed/segment.hh"
#include "seed/smem_engine.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

/** All positions where `pat` occurs in `ref` (brute force). */
std::vector<u32>
occurrences(const Seq &ref, const Seq &pat)
{
    std::vector<u32> out;
    if (pat.empty() || pat.size() > ref.size())
        return out;
    for (size_t r = 0; r + pat.size() <= ref.size(); ++r) {
        if (std::equal(pat.begin(), pat.end(), ref.begin() + r))
            out.push_back(static_cast<u32>(r));
    }
    return out;
}

/** Longest L >= 0 such that read[p, p+L) occurs somewhere in ref. */
u32
maxExtension(const Seq &ref, const Seq &read, u32 pivot)
{
    u32 best = 0;
    for (size_t r = 0; r < ref.size(); ++r) {
        u32 l = 0;
        while (pivot + l < read.size() && r + l < ref.size() &&
               read[pivot + l] == ref[r + l]) {
            ++l;
        }
        best = std::max(best, l);
    }
    return best;
}

// --------------------------------------------------------- KmerIndex

class KmerIndexTest : public ::testing::TestWithParam<u32>
{};

TEST_P(KmerIndexTest, LookupMatchesBruteForce)
{
    const u32 k = GetParam();
    Rng rng(700 + k);
    const Seq ref = randomSeq(rng, 3000);
    KmerIndex index(ref, k);
    for (int t = 0; t < 60; ++t) {
        const size_t pos = rng.below(ref.size() - k + 1);
        const Seq pat(ref.begin() + static_cast<i64>(pos),
                      ref.begin() + static_cast<i64>(pos + k));
        const auto hits = index.lookup(index.packKmer(pat, 0));
        const auto expect = occurrences(ref, pat);
        ASSERT_EQ(hits.size(), expect.size()) << "k=" << k;
        EXPECT_TRUE(std::equal(hits.begin(), hits.end(), expect.begin()));
    }
}

INSTANTIATE_TEST_SUITE_P(Ks, KmerIndexTest,
                         ::testing::Values(3u, 6u, 9u, 12u));

TEST(KmerIndex, AbsentKmerHasNoHits)
{
    // A reference of all-A cannot contain any k-mer with a C.
    const Seq ref(500, kBaseA);
    KmerIndex index(ref, 8);
    const Seq pat = encode("AAAACAAA");
    EXPECT_TRUE(index.lookup(index.packKmer(pat, 0)).empty());
    // And the all-A k-mer hits every position.
    EXPECT_EQ(index.lookup(0).size(), 500u - 8 + 1);
    EXPECT_EQ(index.maxHitListSize(), 493u);
}

TEST(KmerIndex, PositionsAreSorted)
{
    Rng rng(701);
    const Seq ref = randomSeq(rng, 5000);
    KmerIndex index(ref, 5);
    for (u64 key = 0; key < (1u << 10); ++key) {
        const auto hits = index.lookup(key);
        EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
    }
}

TEST(KmerIndex, ShortReferenceHandled)
{
    const Seq ref = encode("ACG");
    KmerIndex index(ref, 8);
    EXPECT_TRUE(index.lookup(0).empty());
    EXPECT_EQ(index.positionTableBytes(), 0u);
}

TEST(KmerIndex, TableFootprints)
{
    Rng rng(702);
    const Seq ref = randomSeq(rng, 10000);
    KmerIndex index(ref, 10);
    EXPECT_EQ(index.indexTableBytes(), (u64{1} << 20) * 3);
    EXPECT_EQ(index.positionTableBytes(), (10000u - 10 + 1) * 3);
}

TEST(KmerIndex, SerializationRoundTrip)
{
    Rng rng(703);
    const Seq ref = randomSeq(rng, 20000);
    KmerIndex index(ref, 9);

    std::stringstream buf;
    ASSERT_TRUE(index.save(buf).ok());
    const auto loaded = KmerIndex::load(buf);
    ASSERT_TRUE(loaded.ok());
    const KmerIndex &back = *loaded;

    EXPECT_EQ(back.k(), index.k());
    EXPECT_EQ(back.segmentLength(), index.segmentLength());
    EXPECT_EQ(back.maxHitListSize(), index.maxHitListSize());
    // Spot-check lookups across the key space.
    for (u64 key = 0; key < (u64{1} << 18); key += 4097) {
        const auto a = index.lookup(key);
        const auto b = back.lookup(key);
        ASSERT_EQ(a.size(), b.size()) << key;
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
}

TEST(KmerIndex, LoadRejectsGarbageRecoverably)
{
    std::stringstream buf("definitely not an index file");
    const auto loaded = KmerIndex::load(buf);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::InvalidInput);
    EXPECT_NE(loaded.status().message().find("not a GenAx k-mer index"),
              std::string::npos);
}

TEST(KmerIndex, LoadRejectsTruncatedFile)
{
    Rng rng(704);
    const Seq ref = randomSeq(rng, 4000);
    KmerIndex index(ref, 8);
    std::stringstream buf;
    ASSERT_TRUE(index.save(buf).ok());
    const std::string whole = buf.str();
    std::stringstream cut(whole.substr(0, whole.size() / 2));
    const auto loaded = KmerIndex::load(cut);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::IoError);
}


// ------------------------------------------- KmerIndex file chaos
//
// saveFile lands through the atomic store writer: any failure leaves
// the destination either absent or the previous intact version, and
// on-disk corruption of a saved index comes back from loadFile as a
// typed recoverable Status, never a crash.

TEST(KmerIndexFile, SaveFailureLeavesPreviousFileIntact)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "genax_kmer_chaos";
    fs::create_directories(dir);
    const std::string path = (dir / "index.gxi").string();

    Rng rng(811);
    const KmerIndex first(randomSeq(rng, 3000), 8);
    ASSERT_TRUE(first.saveFile(path).ok());
    std::error_code ec;
    const auto old_size = fs::file_size(path, ec);
    ASSERT_FALSE(ec);

    const KmerIndex second(randomSeq(rng, 5000), 8);
    {
        ScopedFaultPlan plan(
            {{fault::kStoreEnospc, {.fireOnNth = 1}}});
        const Status st = second.saveFile(path);
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.code(), StatusCode::IoError);
    }
    // The first index is still there, byte-for-byte loadable.
    EXPECT_EQ(fs::file_size(path, ec), old_size);
    const auto loaded = KmerIndex::loadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    EXPECT_EQ(loaded->segmentLength(), first.segmentLength());

    // An injected device error at commit (fsync) behaves the same.
    {
        ScopedFaultPlan plan({{fault::kStoreEio, {.fireOnNth = 1}}});
        ASSERT_FALSE(second.saveFile(path).ok());
    }
    EXPECT_TRUE(KmerIndex::loadFile(path).ok());
    // No abandoned temp files remain next to the destination.
    size_t stray = 0;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(".tmp.") !=
            std::string::npos)
            ++stray;
    EXPECT_EQ(stray, 0u);
    fs::remove_all(dir);
}

TEST(KmerIndexFile, LoadRejectsOnDiskTruncationAndBadMagic)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "genax_kmer_load_chaos";
    fs::create_directories(dir);
    const std::string path = (dir / "index.gxi").string();

    Rng rng(812);
    const KmerIndex index(randomSeq(rng, 4000), 8);
    ASSERT_TRUE(index.saveFile(path).ok());
    std::string whole;
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        whole = buf.str();
    }

    // Truncation at several depths: inside the magic, inside the
    // header, inside the tables. All must fail recoverably.
    for (const size_t keep :
         {size_t{0}, size_t{4}, size_t{20}, whole.size() / 2,
          whole.size() - 1}) {
        {
            std::ofstream out(path, std::ios::binary |
                                        std::ios::trunc);
            out.write(whole.data(),
                      static_cast<std::streamsize>(keep));
        }
        const auto loaded = KmerIndex::loadFile(path);
        ASSERT_FALSE(loaded.ok()) << "kept " << keep;
        EXPECT_TRUE(loaded.status().code() == StatusCode::IoError ||
                    loaded.status().code() ==
                        StatusCode::InvalidInput)
            << "kept " << keep << ": " << loaded.status().str();
    }

    // Bad magic: flip one byte of the tag.
    {
        std::string bad = whole;
        bad[0] ^= 0x40;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bad.data(),
                  static_cast<std::streamsize>(bad.size()));
    }
    const auto loaded = KmerIndex::loadFile(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::InvalidInput);
    fs::remove_all(dir);
}

// ------------------------------------------------------ FlatKmerIndex
//
// The open-addressing layout must be observationally identical to the
// dense CSR layout: same hit lists (contents and order) for every key,
// same CAM-sizing and footprint metadata. These diffs are what lets
// the rest of the system switch layouts behind the SeedIndex alias.

class FlatKmerIndexTest : public ::testing::TestWithParam<u32>
{};

TEST_P(FlatKmerIndexTest, ExhaustivelyMatchesDenseLayout)
{
    const u32 k = GetParam();
    Rng rng(750 + k);
    const Seq ref = randomSeq(rng, 4000);
    const KmerIndex dense(ref, k);
    const FlatKmerIndex flat(ref, k);

    EXPECT_EQ(flat.k(), dense.k());
    EXPECT_EQ(flat.segmentLength(), dense.segmentLength());
    EXPECT_EQ(flat.maxHitListSize(), dense.maxHitListSize());

    u64 distinct = 0;
    for (u64 key = 0; key < (u64{1} << (2 * k)); ++key) {
        const auto d = dense.lookup(key);
        const auto f = flat.lookup(key);
        ASSERT_EQ(f.size(), d.size()) << "key=" << key << " k=" << k;
        ASSERT_TRUE(std::equal(f.begin(), f.end(), d.begin()))
            << "key=" << key << " k=" << k;
        ASSERT_EQ(flat.lookupCount(key), d.size()) << "key=" << key;
        distinct += d.empty() ? 0 : 1;
    }
    EXPECT_EQ(flat.distinctKmers(), distinct);
}

INSTANTIATE_TEST_SUITE_P(Ks, FlatKmerIndexTest,
                         ::testing::Values(3u, 5u, 7u));

TEST(FlatKmerIndex, SampledMatchAtPaperK)
{
    // k = 12 is too wide to sweep exhaustively; diff every k-mer that
    // actually occurs plus a sample of absent keys.
    Rng rng(760);
    const Seq ref = randomSeq(rng, 20000);
    const u32 k = 12;
    const KmerIndex dense(ref, k);
    const FlatKmerIndex flat(ref, k);
    for (size_t pos = 0; pos + k <= ref.size(); ++pos) {
        const u64 key = flat.packKmer(ref, pos);
        const auto d = dense.lookup(key);
        const auto f = flat.lookup(key);
        ASSERT_EQ(f.size(), d.size()) << "pos=" << pos;
        ASSERT_TRUE(std::equal(f.begin(), f.end(), d.begin()));
    }
    for (u64 key = 1; key < (u64{1} << 24); key += 65537) {
        const auto d = dense.lookup(key);
        const auto f = flat.lookup(key);
        ASSERT_EQ(f.size(), d.size()) << "key=" << key;
        ASSERT_TRUE(std::equal(f.begin(), f.end(), d.begin()));
    }
}

TEST(FlatKmerIndex, HardwareFootprintsModelTheDenseTables)
{
    Rng rng(761);
    const Seq ref = randomSeq(rng, 10000);
    const KmerIndex dense(ref, 10);
    const FlatKmerIndex flat(ref, 10);
    // Table II's streaming model must not change with the host layout.
    EXPECT_EQ(flat.indexTableBytes(), dense.indexTableBytes());
    EXPECT_EQ(flat.positionTableBytes(), dense.positionTableBytes());
    // ...but the actual host memory is far smaller than 4^k entries.
    EXPECT_LT(flat.hostBytes(), dense.hostBytes());
}

TEST(FlatKmerIndex, ProbeLengthsAreSane)
{
    Rng rng(762);
    const Seq ref = randomSeq(rng, 8000);
    const FlatKmerIndex flat(ref, 9);
    u64 total = 0, lookups = 0;
    for (size_t pos = 0; pos + 9 <= ref.size(); pos += 7) {
        const u32 p = flat.probeLength(flat.packKmer(ref, pos));
        ASSERT_GE(p, 1u);
        total += p;
        ++lookups;
    }
    // <= 50% load keeps linear probing short: average well under 2.
    EXPECT_LT(static_cast<double>(total) / lookups, 2.0);
}

TEST(FlatKmerIndex, ShortReferenceHandled)
{
    const Seq ref = encode("ACG");
    const FlatKmerIndex flat(ref, 8);
    EXPECT_TRUE(flat.lookup(0).empty());
    EXPECT_EQ(flat.lookupCount(0), 0u);
    EXPECT_EQ(flat.distinctKmers(), 0u);
    EXPECT_EQ(flat.positionTableBytes(), 0u);
}

// --------------------------------------------------------------- CAM

TEST(CamModel, IntersectionCorrectWithNormalization)
{
    CamModel cam(512);
    const std::vector<u32> cand{5, 10, 20, 100};
    const std::vector<u32> hits{2, 13, 23, 95, 103, 200};
    // offset 3: normalized hits {10, 20, 92, 100, 197} and 2 dropped.
    const auto out = cam.intersect(cand, hits, 3);
    EXPECT_EQ(out, (std::vector<u32>{10, 20, 100}));
}

TEST(CamModel, EmptyInputs)
{
    CamModel cam(512);
    EXPECT_TRUE(cam.intersect({}, std::vector<u32>{1, 2}, 0).empty());
    EXPECT_TRUE(cam.intersect({1, 2}, std::vector<u32>{}, 0).empty());
}

TEST(CamModel, RandomizedAgainstSetIntersection)
{
    Rng rng(710);
    CamModel cam(512);
    for (int t = 0; t < 50; ++t) {
        std::set<u32> a, b;
        for (int i = 0; i < 60; ++i)
            a.insert(static_cast<u32>(rng.below(500)));
        for (int i = 0; i < 60; ++i)
            b.insert(static_cast<u32>(rng.below(500)));
        const u32 off = static_cast<u32>(rng.below(20));
        std::vector<u32> cand(a.begin(), a.end());
        std::vector<u32> hits(b.begin(), b.end());
        std::vector<u32> expect;
        for (u32 h : hits)
            if (h >= off && a.count(h - off))
                expect.push_back(h - off);
        EXPECT_EQ(cam.intersect(cand, hits, off), expect);
    }
}

TEST(CamModel, CountsCamSearchesForSmallLists)
{
    CamModel cam(512);
    cam.intersect({1, 2, 3}, std::vector<u32>{1, 2, 3, 4, 5}, 0);
    EXPECT_EQ(cam.stats().loads, 5u);    // hit list into the CAM
    EXPECT_EQ(cam.stats().searches, 3u); // one per candidate
    EXPECT_EQ(cam.stats().binarySteps, 0u);
    EXPECT_EQ(cam.stats().overflowFallbacks, 0u);
}

TEST(CamModel, BinaryFallbackForOversizedLists)
{
    CamModel with_fallback(4, true);
    CamModel without_fallback(4, false);
    const std::vector<u32> cand{1, 2, 3};
    std::vector<u32> hits;
    for (u32 i = 0; i < 100; ++i)
        hits.push_back(i);
    const auto a = with_fallback.intersect(cand, hits, 0);
    const auto b = without_fallback.intersect(cand, hits, 0);
    EXPECT_EQ(a, b); // identical result, different cost path
    EXPECT_EQ(with_fallback.stats().searches, 0u);
    EXPECT_GT(with_fallback.stats().binarySteps, 0u);
    EXPECT_EQ(with_fallback.stats().overflowFallbacks, 1u);
    // 25 CAM refill passes, candidates re-streamed each pass.
    EXPECT_EQ(without_fallback.stats().searches, 25u * 3);
    // The fallback saves lookups: |cand| * log vs |hits|.
    EXPECT_LT(with_fallback.stats().lookups(),
              without_fallback.stats().lookups());
}

// -------------------------------------------------------- SMEM engine

TEST(SmemEngine, ExactReadFastPath)
{
    Rng rng(720);
    const Seq ref = randomSeq(rng, 20000);
    SeedIndex index(ref, 10);
    SmemEngine engine(index, {});
    const u32 pos = 4321, len = 101;
    const Seq read(ref.begin() + pos, ref.begin() + pos + len);
    const auto seeds = engine.seed(read);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0].qryBegin, 0u);
    EXPECT_EQ(seeds[0].qryEnd, len);
    ASSERT_FALSE(seeds[0].positions.empty());
    EXPECT_TRUE(std::find(seeds[0].positions.begin(),
                          seeds[0].positions.end(),
                          pos) != seeds[0].positions.end());
    EXPECT_EQ(engine.stats().exactMatchReads, 1u);
}

TEST(SmemEngine, ExactPositionsMatchBruteForce)
{
    Rng rng(721);
    // Force repeats so the exact read has multiple hits.
    Seq ref = randomSeq(rng, 5000);
    const Seq unit(ref.begin() + 100, ref.begin() + 400);
    for (int copy = 0; copy < 3; ++copy)
        ref.insert(ref.end(), unit.begin(), unit.end());
    SeedIndex index(ref, 10);
    SmemEngine engine(index, {});
    const Seq read(ref.begin() + 150, ref.begin() + 251);
    const auto seeds = engine.seed(read);
    ASSERT_EQ(seeds.size(), 1u);
    const auto expect_pos = occurrences(ref, read);
    ASSERT_EQ(seeds[0].positions.size(), expect_pos.size());
    EXPECT_TRUE(std::equal(seeds[0].positions.begin(),
                           seeds[0].positions.end(),
                           expect_pos.begin()));
}

/** Reference SMEM oracle matching the engine's reporting rule. */
std::vector<Smem>
smemOracle(const Seq &ref, const Seq &read, u32 k)
{
    std::vector<Smem> out;
    u32 max_end = 0;
    for (u32 pivot = 0; pivot + k <= read.size(); ++pivot) {
        const u32 ext = maxExtension(ref, read, pivot);
        if (ext < k)
            continue;
        const u32 end = pivot + ext;
        if (end <= max_end)
            continue;
        max_end = end;
        Smem s;
        s.qryBegin = pivot;
        s.qryEnd = end;
        const Seq pat(read.begin() + pivot, read.begin() + end);
        const auto occ = occurrences(ref, pat);
        s.positions.assign(occ.begin(), occ.end());
        out.push_back(std::move(s));
    }
    return out;
}

TEST(SmemEngine, MatchesOracleOnMutatedReads)
{
    Rng rng(722);
    const Seq ref = randomSeq(rng, 4000);
    SeedIndex index(ref, 8);
    SeedingConfig cfg;
    cfg.exactMatchFastPath = false; // exercise the pivot loop fully
    SmemEngine engine(index, cfg);
    for (int t = 0; t < 15; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 120));
        Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        // A couple of substitutions to split the read into SMEMs.
        for (int e = 0; e < 2; ++e) {
            const u64 p = rng.below(read.size());
            read[p] = static_cast<Base>((read[p] + 1 + rng.below(3)) & 3);
        }
        const auto got = engine.seed(read);
        const auto expect = smemOracle(ref, read, 8);
        ASSERT_EQ(got.size(), expect.size()) << "t=" << t;
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].qryBegin, expect[i].qryBegin);
            EXPECT_EQ(got[i].qryEnd, expect[i].qryEnd);
            EXPECT_EQ(got[i].positions, expect[i].positions)
                << "smem " << i;
        }
    }
}

TEST(SmemEngine, OptimizationsPreserveResults)
{
    Rng rng(723);
    const Seq ref = randomSeq(rng, 4000);
    SeedIndex index(ref, 8);

    SeedingConfig base;
    base.exactMatchFastPath = false;
    base.probing = false;
    base.binarySearchFallback = false;

    for (int t = 0; t < 10; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 120));
        Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        for (int e = 0; e < 3; ++e) {
            const u64 p = rng.below(read.size());
            read[p] = static_cast<Base>((read[p] + 1 + rng.below(3)) & 3);
        }

        SmemEngine plain(index, base);
        const auto expect = plain.seed(read);

        for (int variant = 0; variant < 3; ++variant) {
            SeedingConfig cfg = base;
            if (variant == 0)
                cfg.probing = true;
            if (variant == 1)
                cfg.binarySearchFallback = true;
            if (variant == 2)
                cfg.exactMatchFastPath = true;
            SmemEngine opt(index, cfg);
            const auto got = opt.seed(read);
            ASSERT_EQ(got.size(), expect.size()) << "variant=" << variant;
            for (size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].qryBegin, expect[i].qryBegin);
                EXPECT_EQ(got[i].qryEnd, expect[i].qryEnd);
                EXPECT_EQ(got[i].positions, expect[i].positions);
            }
        }
    }
}

TEST(SmemEngine, StrideRefinementLengthensSmems)
{
    Rng rng(724);
    const Seq ref = randomSeq(rng, 4000);
    SeedIndex index(ref, 8);
    SeedingConfig with, without;
    with.exactMatchFastPath = without.exactMatchFastPath = false;
    without.strideRefinement = false;

    bool strictly_longer_somewhere = false;
    for (int t = 0; t < 10; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 120));
        Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        const u64 p = 30 + rng.below(40);
        read[p] = static_cast<Base>((read[p] + 1 + rng.below(3)) & 3);

        SmemEngine a(index, with), b(index, without);
        const auto refined = a.seed(read);
        const auto coarse = b.seed(read);
        ASSERT_FALSE(refined.empty());
        ASSERT_FALSE(coarse.empty());
        // Both report the pivot-0 RMEM first; refinement can only
        // lengthen it.
        EXPECT_EQ(refined[0].qryBegin, 0u);
        EXPECT_EQ(coarse[0].qryBegin, 0u);
        EXPECT_GE(refined[0].length(), coarse[0].length());
        strictly_longer_somewhere |=
            refined[0].length() > coarse[0].length();
    }
    EXPECT_TRUE(strictly_longer_somewhere);
}

TEST(SmemEngine, SmemFilterReducesReportedHits)
{
    Rng rng(725);
    const Seq ref = randomSeq(rng, 4000);
    SeedIndex index(ref, 8);
    SeedingConfig filtered, raw;
    filtered.exactMatchFastPath = raw.exactMatchFastPath = false;
    raw.smemFilter = false;

    SmemEngine a(index, filtered), b(index, raw);
    for (int t = 0; t < 10; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 120));
        const Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        a.seed(read);
        b.seed(read);
    }
    EXPECT_LT(a.stats().hitsReported, b.stats().hitsReported);
    EXPECT_LT(a.stats().smems, b.stats().smems);
}

TEST(SmemEngine, BinaryFallbackCutsCamLookupsOnRepetitiveGenomes)
{
    // Poly-A stretches create the pathological hit lists the paper
    // calls out ("AA...A"); the binary fallback bounds the cost.
    Rng rng(726);
    Seq ref = randomSeq(rng, 2000);
    ref.insert(ref.end(), 40000, kBaseA);
    SeedIndex index(ref, 8);

    SeedingConfig with, without;
    with.exactMatchFastPath = without.exactMatchFastPath = false;
    without.binarySearchFallback = false;

    Seq read(101, kBaseA);
    read[50] = kBaseC; // not an exact match

    SmemEngine a(index, with), b(index, without);
    a.seed(read);
    b.seed(read);
    EXPECT_LT(a.stats().cam.lookups(), b.stats().cam.lookups());
}

TEST(SmemEngine, ShortReadProducesNoSeeds)
{
    Rng rng(727);
    const Seq ref = randomSeq(rng, 1000);
    SeedIndex index(ref, 12);
    SmemEngine engine(index, {});
    EXPECT_TRUE(engine.seed(encode("ACGTACG")).empty());
}

// ------------------------------------------------------------ segments

TEST(GenomeSegments, PartitionCoversGenomeWithOverlap)
{
    Rng rng(730);
    const Seq ref = randomSeq(rng, 100000);
    SegmentConfig cfg;
    cfg.segmentCount = 16;
    cfg.overlap = 100;
    cfg.k = 8;
    GenomeSegments segs(ref, cfg);
    ASSERT_EQ(segs.count(), 16u);
    // Contiguity: segment i+1 starts exactly base-length after i.
    EXPECT_EQ(segs.start(0), 0u);
    for (u64 i = 0; i + 1 < segs.count(); ++i)
        EXPECT_EQ(segs.start(i + 1) - segs.start(i), 6250u);
    // Every 101-window is fully inside some segment.
    for (u64 w = 0; w + 101 <= ref.size(); w += 997) {
        bool covered = false;
        for (u64 i = 0; i < segs.count(); ++i) {
            if (w >= segs.start(i) &&
                w + 101 <= segs.start(i) + segs.length(i)) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered) << "window at " << w;
    }
}

TEST(GenomeSegments, SegmentBasesMatchReference)
{
    Rng rng(731);
    const Seq ref = randomSeq(rng, 50000);
    SegmentConfig cfg;
    cfg.segmentCount = 8;
    cfg.overlap = 128;
    GenomeSegments segs(ref, cfg);
    for (u64 i = 0; i < segs.count(); ++i) {
        const Seq seg = segs.bases(i);
        for (u64 j = 0; j < seg.size(); j += 199)
            EXPECT_EQ(seg[j], ref[segs.toGlobal(i, j)]);
    }
}

TEST(GenomeSegments, SeedingThroughSegmentsFindsGlobalPosition)
{
    Rng rng(732);
    const Seq ref = randomSeq(rng, 60000);
    SegmentConfig cfg;
    cfg.segmentCount = 8;
    cfg.overlap = 128;
    cfg.k = 10;
    GenomeSegments segs(ref, cfg);

    // A read sampled deep inside segment 5.
    const u64 pos = segs.start(5) + 1000;
    const Seq read(ref.begin() + static_cast<i64>(pos),
                   ref.begin() + static_cast<i64>(pos + 101));

    bool found = false;
    for (u64 i = 0; i < segs.count(); ++i) {
        const SeedIndex index = segs.buildSeedIndex(i);
        SmemEngine engine(index, {});
        for (const auto &smem : engine.seed(read)) {
            for (u32 local : smem.positions) {
                if (segs.toGlobal(i, local) ==
                    pos + smem.qryBegin) {
                    found = true;
                }
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(GenomeSegments, FootprintFormulas)
{
    Rng rng(733);
    const Seq ref = randomSeq(rng, 40000);
    SegmentConfig cfg;
    cfg.segmentCount = 4;
    cfg.overlap = 100;
    cfg.k = 9;
    GenomeSegments segs(ref, cfg);
    EXPECT_EQ(segs.indexTableBytes(), (u64{1} << 18) * 3);
    const KmerIndex idx = segs.buildIndex(1);
    EXPECT_EQ(segs.positionTableBytes(1), idx.positionTableBytes());
    EXPECT_EQ(segs.refBytes(1), (segs.length(1) + 3) / 4);
}

} // namespace
} // namespace genax
