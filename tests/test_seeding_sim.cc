/**
 * @file
 * Tests for the banked-SRAM seeding-lane simulator: closed-form
 * agreement in the contention-free extremes, serialization under a
 * single bank, monotone scaling with banks/lanes, and integration
 * with the GenAx system model.
 */

#include <gtest/gtest.h>

#include "genax/seeding_sim.hh"
#include "genax/system.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"

namespace genax {
namespace {

TEST(SeedingSim, EmptyWorkIsFree)
{
    SeedingLaneSim sim(SeedingSimConfig{});
    const auto r = sim.simulate({});
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.grants, 0u);
}

TEST(SeedingSim, SingleLaneNoContentionMatchesClosedForm)
{
    SeedingSimConfig cfg;
    cfg.lanes = 1;
    cfg.banks = 64; // effectively conflict-free for one lane
    cfg.sramLatency = 2;
    cfg.issueWidth = 4;
    SeedingLaneSim sim(cfg);

    const u64 lookups = 100, cam = 40;
    const auto r = sim.simulate({{lookups, cam}});
    EXPECT_EQ(r.grants, lookups);
    // One issue per cycle, then drain latency, then CAM ops.
    const Cycle expect = lookups + cfg.sramLatency + cam;
    EXPECT_NEAR(static_cast<double>(r.cycles),
                static_cast<double>(expect), 4.0);
}

TEST(SeedingSim, SingleBankSerializesAllLanes)
{
    SeedingSimConfig cfg;
    cfg.lanes = 16;
    cfg.banks = 1;
    SeedingLaneSim sim(cfg);

    std::vector<LaneWork> work(64, {50, 0});
    const auto r = sim.simulate(work);
    // 64 * 50 lookups through one port: at least that many cycles.
    EXPECT_GE(r.cycles, 64u * 50u);
    EXPECT_GT(r.bankConflicts, 0u);
    EXPECT_NEAR(r.bankUtilization(1), 1.0, 0.05);
}

TEST(SeedingSim, MoreBanksNeverSlower)
{
    std::vector<LaneWork> work(256, {30, 10});
    Cycle prev = ~Cycle{0};
    for (u32 banks : {1u, 4u, 16u, 64u}) {
        SeedingSimConfig cfg;
        cfg.lanes = 32;
        cfg.banks = banks;
        const auto r = SeedingLaneSim(cfg).simulate(work);
        EXPECT_LE(r.cycles, prev) << "banks=" << banks;
        prev = r.cycles;
    }
}

TEST(SeedingSim, MoreLanesNeverSlower)
{
    std::vector<LaneWork> work(256, {30, 10});
    Cycle prev = ~Cycle{0};
    for (u32 lanes : {1u, 8u, 64u, 128u}) {
        SeedingSimConfig cfg;
        cfg.lanes = lanes;
        cfg.banks = 64;
        const auto r = SeedingLaneSim(cfg).simulate(work);
        EXPECT_LE(r.cycles, prev) << "lanes=" << lanes;
        prev = r.cycles;
    }
}

TEST(SeedingSim, GrantsConserveWork)
{
    std::vector<LaneWork> work;
    u64 total = 0;
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
        const u64 l = rng.below(80);
        work.push_back({l, rng.below(20)});
        total += l;
    }
    SeedingSimConfig cfg;
    cfg.lanes = 8;
    cfg.banks = 4;
    const auto r = SeedingLaneSim(cfg).simulate(work);
    EXPECT_EQ(r.grants, total);
}

TEST(SeedingSim, GenAxIntegrationStaysClose)
{
    // The simulated seeding time should be within a small factor of
    // the closed-form model (which it refines), and alignment
    // results must be identical.
    RefGenConfig rcfg;
    rcfg.length = 150000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig rs;
    rs.numReads = 120;
    const auto sim_reads = simulateReads(ref, rs);
    std::vector<Seq> reads;
    for (const auto &r : sim_reads)
        reads.push_back(r.seq);

    GenAxConfig cfg;
    cfg.k = 10;
    cfg.editBound = 16;
    cfg.segmentCount = 4;
    cfg.segmentOverlap = 160;
    GenAxConfig sim_cfg = cfg;
    sim_cfg.simulateSeedingLanes = true;

    GenAxSystem closed(ref, cfg), simulated(ref, sim_cfg);
    const auto a = closed.alignAll(reads);
    const auto b = simulated.alignAll(reads);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pos, b[i].pos);
        EXPECT_EQ(a[i].score, b[i].score);
    }
    const double closed_sec = closed.perf().seedingSeconds;
    const double sim_sec = simulated.perf().seedingSeconds;
    EXPECT_GT(sim_sec, 0.0);
    // Same order of magnitude; the simulation includes conflicts and
    // queueing the closed form ignores.
    EXPECT_LT(sim_sec, closed_sec * 30);
    EXPECT_GT(sim_sec, closed_sec / 30);
}

} // namespace
} // namespace genax
