/**
 * @file
 * Tests for paired-end simulation and alignment: FR geometry,
 * insert-size statistics, proper-pair resolution, and repeat rescue
 * through the mate constraint.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "swbase/paired.hh"

namespace genax {
namespace {

// ---------------------------------------------------- pair simulation

TEST(PairSim, FrGeometryOnCleanDonor)
{
    RefGenConfig rcfg;
    rcfg.length = 100000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 100;
    cfg.snpRate = 0;
    cfg.donorIndelRate = 0;
    cfg.baseErrorRate = 0;
    cfg.readIndelRate = 0;
    const auto pairs = simulatePairs(ref, cfg);
    ASSERT_EQ(pairs.size(), 100u);
    for (const auto &p : pairs) {
        ASSERT_EQ(p.r1.seq.size(), cfg.readLen);
        ASSERT_EQ(p.r2.seq.size(), cfg.readLen);
        EXPECT_FALSE(p.r1.reverse);
        EXPECT_TRUE(p.r2.reverse);
        // R1 matches the reference at its truth position.
        const Seq w1(ref.begin() + static_cast<i64>(p.r1.truthPos),
                     ref.begin() + static_cast<i64>(p.r1.truthPos) +
                         static_cast<i64>(cfg.readLen));
        EXPECT_EQ(p.r1.seq, w1);
        // R2 is the reverse complement of the fragment's 3' end.
        const Seq w2(ref.begin() + static_cast<i64>(p.r2.truthPos),
                     ref.begin() + static_cast<i64>(p.r2.truthPos) +
                         static_cast<i64>(cfg.readLen));
        EXPECT_EQ(reverseComplement(p.r2.seq), w2);
        // Geometry: R2 starts fragmentLen - readLen after R1.
        EXPECT_EQ(p.r2.truthPos - p.r1.truthPos,
                  p.fragmentLen - cfg.readLen);
    }
}

TEST(PairSim, InsertSizeDistribution)
{
    RefGenConfig rcfg;
    rcfg.length = 200000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 2000;
    PairSimConfig pcfg;
    pcfg.insertMean = 350;
    pcfg.insertSd = 25;
    const auto pairs = simulatePairs(ref, cfg, pcfg);
    double sum = 0, sq = 0;
    for (const auto &p : pairs) {
        sum += static_cast<double>(p.fragmentLen);
        sq += static_cast<double>(p.fragmentLen) *
              static_cast<double>(p.fragmentLen);
    }
    const double mean = sum / pairs.size();
    const double sd = std::sqrt(sq / pairs.size() - mean * mean);
    EXPECT_NEAR(mean, 350, 3);
    EXPECT_NEAR(sd, 25, 3);
}

// ----------------------------------------------------- paired aligner

class PairedAlignerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        RefGenConfig rcfg;
        rcfg.length = 200000;
        rcfg.seed = 13;
        ref = generateReference(rcfg);
        AlignerConfig cfg;
        cfg.k = 11;
        cfg.band = 16;
        aligner = std::make_unique<BwaMemLike>(ref, cfg);
    }

    Seq ref;
    std::unique_ptr<BwaMemLike> aligner;
};

TEST_F(PairedAlignerTest, CleanPairsResolveProper)
{
    ReadSimConfig cfg;
    cfg.numReads = 80;
    cfg.seed = 14;
    const auto pairs = simulatePairs(ref, cfg);
    PairedAligner paired(*aligner);
    u64 proper = 0, correct = 0;
    for (const auto &p : pairs) {
        const auto m = paired.alignPair(p.r1.seq, p.r2.seq);
        ASSERT_TRUE(m.r1.mapped);
        ASSERT_TRUE(m.r2.mapped);
        proper += m.proper;
        const i64 d1 = static_cast<i64>(m.r1.pos) -
                       static_cast<i64>(p.r1.truthPos);
        const i64 d2 = static_cast<i64>(m.r2.pos) -
                       static_cast<i64>(p.r2.truthPos);
        if (std::llabs(d1) <= 12 && std::llabs(d2) <= 12)
            ++correct;
        if (m.proper) {
            EXPECT_GT(m.templateLen, 0);
            EXPECT_NEAR(static_cast<double>(m.templateLen), 300, 150);
        }
    }
    EXPECT_GT(static_cast<double>(proper) / pairs.size(), 0.9);
    EXPECT_GT(static_cast<double>(correct) / pairs.size(), 0.9);
}

TEST_F(PairedAlignerTest, DistantMatesAreImproper)
{
    // Mates drawn from loci 50 kbp apart can both map but never as a
    // proper pair.
    const Seq r1(ref.begin() + 10000, ref.begin() + 10101);
    const Seq r2 =
        reverseComplement(Seq(ref.begin() + 60000, ref.begin() + 60101));
    PairedAligner paired(*aligner);
    const auto m = paired.alignPair(r1, r2);
    ASSERT_TRUE(m.r1.mapped);
    ASSERT_TRUE(m.r2.mapped);
    EXPECT_FALSE(m.proper);
    EXPECT_EQ(m.r1.pos, 10000u);
    EXPECT_EQ(m.r2.pos, 60000u);
}

TEST_F(PairedAlignerTest, MateRescuesRepetitiveRead)
{
    // Duplicate a 150 bp block far away: a read inside the block is
    // ambiguous alone, but its mate in the unique flank pins the
    // correct copy.
    Seq dup_ref = ref;
    const u64 src = 120000, dst = dup_ref.size();
    dup_ref.insert(dup_ref.end(), ref.begin() + src,
                   ref.begin() + src + 150);
    AlignerConfig cfg;
    cfg.k = 11;
    cfg.band = 16;
    BwaMemLike dup_aligner(dup_ref, cfg);

    // R1 entirely inside the duplicated block (maps to src or dst
    // equally well); R2 in the unique region ~300 bp before it.
    const Seq r1(dup_ref.begin() + static_cast<i64>(src) + 20,
                 dup_ref.begin() + static_cast<i64>(src) + 121);
    const u64 frag_start = src + 141 - 300; // fragment length 300
    const Seq fwd_mate(dup_ref.begin() + static_cast<i64>(frag_start),
                       dup_ref.begin() +
                           static_cast<i64>(frag_start + 101));

    // Alone, R1 is ambiguous: two equal-scoring placements.
    const auto solo = dup_aligner.candidates(r1, 8);
    ASSERT_GE(solo.size(), 2u);
    EXPECT_EQ(solo[0].score, solo[1].score);
    EXPECT_EQ(dup_aligner.alignRead(r1).mapq, 0);

    // Paired with the forward mate, the src copy must win.
    // Library geometry: fwd_mate is R1-forward, r1 acts as the
    // reverse mate of the fragment.
    PairedAligner paired(dup_aligner);
    const auto m = paired.alignPair(fwd_mate, reverseComplement(r1));
    ASSERT_TRUE(m.r1.mapped);
    ASSERT_TRUE(m.r2.mapped);
    EXPECT_TRUE(m.proper);
    EXPECT_EQ(m.r2.pos, src + 20);
    EXPECT_GT(m.r2.mapq, 0); // rescued: no longer ambiguous
    EXPECT_NE(m.r2.pos, dst + 20);
}

TEST_F(PairedAlignerTest, BatchApiMatchesPerPairCalls)
{
    ReadSimConfig cfg;
    cfg.numReads = 20;
    cfg.seed = 15;
    const auto pairs = simulatePairs(ref, cfg);
    std::vector<Seq> r1s, r2s;
    for (const auto &p : pairs) {
        r1s.push_back(p.r1.seq);
        r2s.push_back(p.r2.seq);
    }
    PairedAligner paired(*aligner);
    const auto batch = paired.alignAllPairs(r1s, r2s, 4);
    ASSERT_EQ(batch.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        const auto single = paired.alignPair(r1s[i], r2s[i]);
        EXPECT_EQ(batch[i].r1.pos, single.r1.pos);
        EXPECT_EQ(batch[i].r2.pos, single.r2.pos);
        EXPECT_EQ(batch[i].proper, single.proper);
        EXPECT_EQ(batch[i].templateLen, single.templateLen);
    }
}

TEST_F(PairedAlignerTest, OneGarbageMateFallsBackToSingleEnd)
{
    const Seq good(ref.begin() + 5000, ref.begin() + 5101);
    Seq junk;
    for (int i = 0; i < 101; ++i)
        junk.push_back(i % 2 ? kBaseC : kBaseA);
    PairedAligner paired(*aligner);
    const auto m = paired.alignPair(good, junk);
    EXPECT_TRUE(m.r1.mapped);
    EXPECT_FALSE(m.proper);
}

} // namespace
} // namespace genax
