/**
 * @file
 * Arena / ArenaAllocator lifetime and accounting tests: bump
 * allocation, reset-and-reuse, heap fallback, copy-detach and
 * move-propagation semantics the seeding hot path relies on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "common/arena.hh"

namespace genax {
namespace {

TEST(Arena, HandsOutAlignedDistinctMemory)
{
    Arena arena(64);
    void *a = arena.allocate(8, 8);
    void *b = arena.allocate(8, 8);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
    void *wide = arena.allocate(3, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(wide) % 64, 0u);
}

TEST(Arena, GrowsBeyondFirstBlock)
{
    Arena arena(32);
    // Far more than the first block; forces geometric growth and an
    // oversized block for the big request.
    std::vector<void *> ptrs;
    for (int i = 0; i < 100; ++i)
        ptrs.push_back(arena.allocate(16, 8));
    void *big = arena.allocate(10000, 8);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0xab, 10000); // must be writable
    EXPECT_GE(arena.capacityBytes(), 10000u + 100u * 16u);
    EXPECT_EQ(arena.allocatedBytes(), 10000u + 100u * 16u);
}

TEST(Arena, ResetRecyclesWithoutNewCapacity)
{
    Arena arena(1024);
    for (int i = 0; i < 50; ++i)
        arena.allocate(100, 8);
    const size_t cap = arena.capacityBytes();
    EXPECT_EQ(arena.allocatedBytes(), 5000u);

    arena.reset();
    EXPECT_EQ(arena.allocatedBytes(), 0u);
    EXPECT_EQ(arena.capacityBytes(), cap) << "reset must retain blocks";

    // The same workload after reset reuses the retained blocks: the
    // steady-state reset-per-batch loop stops growing.
    for (int i = 0; i < 50; ++i)
        arena.allocate(100, 8);
    EXPECT_EQ(arena.capacityBytes(), cap);
    EXPECT_EQ(arena.allocatedBytes(), 5000u);
}

TEST(Arena, ResetReusesMemoryForFreshObjects)
{
    Arena arena(256);
    {
        ArenaVector<u32> v{ArenaAllocator<u32>(&arena)};
        v.assign(64, 7);
        ASSERT_EQ(v.size(), 64u);
    } // v dead before reset — the required discipline
    arena.reset();
    ArenaVector<u32> w{ArenaAllocator<u32>(&arena)};
    w.assign(64, 9);
    EXPECT_EQ(std::accumulate(w.begin(), w.end(), 0u), 64u * 9u);
}

TEST(ArenaAllocator, DefaultConstructedFallsBackToHeap)
{
    // No arena anywhere: the container type must work as an ordinary
    // member (Smem::positions in fixtures does exactly this).
    ArenaVector<u32> v;
    EXPECT_EQ(v.get_allocator().arena(), nullptr);
    v.assign(1000, 3);
    EXPECT_EQ(v.size(), 1000u);
}

TEST(ArenaAllocator, CopiesDetachToTheHeap)
{
    Arena arena(256);
    ArenaVector<u32> src{ArenaAllocator<u32>(&arena)};
    src.assign(32, 5);
    ASSERT_EQ(src.get_allocator().arena(), &arena);

    ArenaVector<u32> copy(src);
    EXPECT_EQ(copy.get_allocator().arena(), nullptr)
        << "copy construction must detach from the arena";

    // The copy survives a reset that invalidates the source.
    src.clear();
    src.shrink_to_fit();
    arena.reset();
    EXPECT_EQ(copy.size(), 32u);
    for (const u32 x : copy)
        EXPECT_EQ(x, 5u);
}

TEST(ArenaAllocator, MoveKeepsTheArenaWithinAnEpoch)
{
    Arena arena(256);
    ArenaVector<u32> src{ArenaAllocator<u32>(&arena)};
    src.assign(16, 2);
    ArenaVector<u32> dst;
    dst = std::move(src); // POCMA: allocator moves with the storage
    EXPECT_EQ(dst.get_allocator().arena(), &arena);
    EXPECT_EQ(dst.size(), 16u);
}

TEST(ArenaAllocator, EqualityTracksTheArena)
{
    Arena a(64), b(64);
    EXPECT_TRUE(ArenaAllocator<u32>(&a) == ArenaAllocator<u32>(&a));
    EXPECT_FALSE(ArenaAllocator<u32>(&a) == ArenaAllocator<u32>(&b));
    EXPECT_FALSE(ArenaAllocator<u32>(&a) == ArenaAllocator<u32>());
    // Rebinding preserves the arena identity.
    EXPECT_TRUE(ArenaAllocator<u64>(ArenaAllocator<u32>(&a)) ==
                ArenaAllocator<u64>(&a));
}

TEST(ArenaAllocator, GrowingVectorStaysCorrectAcrossRealloc)
{
    Arena arena(128);
    ArenaVector<u32> v{ArenaAllocator<u32>(&arena)};
    for (u32 i = 0; i < 5000; ++i)
        v.push_back(i); // many arena-internal reallocations
    for (u32 i = 0; i < 5000; ++i)
        ASSERT_EQ(v[i], i);
}

} // namespace
} // namespace genax
