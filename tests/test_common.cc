/**
 * @file
 * Unit tests for the common substrate: DNA encoding, packed
 * sequences, RNG determinism, and the invariant-check layer.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/check.hh"
#include "common/dna.hh"
#include "common/rng.hh"

namespace genax {
namespace {

TEST(Check, PassingCheckIsSilent)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    EXPECT_NO_THROW(GENAX_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Check, FailingCheckThrowsWithContext)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    const int occupancy = 17, limit = 16;
    try {
        GENAX_CHECK(occupancy <= limit,
                    "occupancy ", occupancy, " over limit ", limit);
        FAIL() << "check did not fire";
    } catch (const CheckViolation &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("occupancy <= limit"), std::string::npos);
        EXPECT_NE(what.find("occupancy 17 over limit 16"),
                  std::string::npos);
        EXPECT_NE(what.find("test_common.cc"), std::string::npos);
        EXPECT_EQ(e.context().expr,
                  std::string("occupancy <= limit"));
    }
}

TEST(Check, ScopedHandlerRestoresPrevious)
{
    // Nested scopes: the inner guard throws, and after it unwinds
    // the outer throwing handler is active again (not the default
    // aborting one, which would kill the test process).
    ScopedCheckHandler outer(&throwingCheckHandler);
    {
        ScopedCheckHandler inner(&throwingCheckHandler);
        EXPECT_THROW(GENAX_CHECK(false, "inner"), CheckViolation);
    }
    EXPECT_THROW(GENAX_CHECK(false, "outer"), CheckViolation);
}

TEST(Check, MessagelessCheckStillReportsExpression)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    try {
        GENAX_CHECK(2 < 1);
        FAIL() << "check did not fire";
    } catch (const CheckViolation &e) {
        EXPECT_NE(std::string(e.what()).find("2 < 1"),
                  std::string::npos);
    }
}

TEST(Check, DcheckCompilesInBothModes)
{
    // GENAX_DCHECK must stay syntactically valid whether or not the
    // build enables it; when enabled it behaves like GENAX_CHECK.
    ScopedCheckHandler guard(&throwingCheckHandler);
#if GENAX_ENABLE_DCHECKS
    EXPECT_THROW(GENAX_DCHECK(false, "debug invariant"),
                 CheckViolation);
#else
    EXPECT_NO_THROW(GENAX_DCHECK(false, "debug invariant"));
#endif
    EXPECT_NO_THROW(GENAX_DCHECK(true, "fine"));
}

TEST(Check, UnreachableFires)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    const auto hit_unreachable = [] {
        switch (3) {
          case 3:
            GENAX_UNREACHABLE("decoder fell through: op=", 3);
          default:
            break;
        }
    };
    EXPECT_THROW(hit_unreachable(), CheckViolation);
}

TEST(Dna, EncodeDecodeRoundTrip)
{
    const std::string s = "ACGTACGTTTGGCCAA";
    EXPECT_EQ(decode(encode(s)), s);
}

TEST(Dna, CharToBaseCases)
{
    EXPECT_EQ(charToBase('A'), kBaseA);
    EXPECT_EQ(charToBase('a'), kBaseA);
    EXPECT_EQ(charToBase('C'), kBaseC);
    EXPECT_EQ(charToBase('g'), kBaseG);
    EXPECT_EQ(charToBase('T'), kBaseT);
    // Ambiguity codes collapse to A.
    EXPECT_EQ(charToBase('N'), kBaseA);
    EXPECT_EQ(charToBase('x'), kBaseA);
}

TEST(Dna, IsAcgt)
{
    EXPECT_TRUE(isAcgt('A'));
    EXPECT_TRUE(isAcgt('t'));
    EXPECT_FALSE(isAcgt('N'));
    EXPECT_FALSE(isAcgt('>'));
}

TEST(Dna, Complement)
{
    EXPECT_EQ(complement(kBaseA), kBaseT);
    EXPECT_EQ(complement(kBaseT), kBaseA);
    EXPECT_EQ(complement(kBaseC), kBaseG);
    EXPECT_EQ(complement(kBaseG), kBaseC);
}

TEST(Dna, ReverseComplement)
{
    EXPECT_EQ(decode(reverseComplement(encode("ACGT"))), "ACGT");
    EXPECT_EQ(decode(reverseComplement(encode("AACG"))), "CGTT");
    EXPECT_EQ(reverseComplement(Seq{}), Seq{});
    // Involution property.
    const Seq s = encode("GATTACAGATTACA");
    EXPECT_EQ(reverseComplement(reverseComplement(s)), s);
}

TEST(PackedSeq, RandomAccessMatchesUnpacked)
{
    Rng rng(1);
    Seq s;
    for (int i = 0; i < 1000; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    PackedSeq p(s);
    ASSERT_EQ(p.size(), s.size());
    for (size_t i = 0; i < s.size(); ++i)
        EXPECT_EQ(p[i], s[i]) << "at " << i;
    EXPECT_EQ(p.unpack(), s);
}

TEST(PackedSeq, KmerExtraction)
{
    const Seq s = encode("ACGTACGTACGTACGTACGTACGTACGTACGTACGT");
    PackedSeq p(s);
    for (unsigned k : {1u, 2u, 12u, 31u, 32u}) {
        for (size_t pos = 0; pos + k <= s.size(); ++pos) {
            u64 expect = 0;
            for (unsigned i = 0; i < k; ++i)
                expect |= static_cast<u64>(s[pos + i]) << (2 * i);
            EXPECT_EQ(p.kmer(pos, k), expect)
                << "k=" << k << " pos=" << pos;
        }
    }
}

TEST(PackedSeq, KmerCrossesWordBoundary)
{
    Rng rng(2);
    Seq s;
    for (int i = 0; i < 200; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    PackedSeq p(s);
    // Positions straddling the 32-base word boundary.
    for (size_t pos = 20; pos < 44; ++pos) {
        u64 expect = 0;
        for (unsigned i = 0; i < 12; ++i)
            expect |= static_cast<u64>(s[pos + i]) << (2 * i);
        EXPECT_EQ(p.kmer(pos, 12), expect) << "pos=" << pos;
    }
}

TEST(PackedSeq, SubrangeUnpack)
{
    const Seq s = encode("TTGACGTACCAGGT");
    PackedSeq p(s);
    EXPECT_EQ(decode(p.unpack(2, 5)), "GACGT");
    EXPECT_EQ(decode(p.unpack(0, 0)), "");
    EXPECT_EQ(decode(p.unpack(13, 1)), "T");
}

TEST(PackedSeq, PushBackIncremental)
{
    PackedSeq p;
    Seq ref;
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const Base b = static_cast<Base>(rng.below(4));
        p.push_back(b);
        ref.push_back(b);
    }
    EXPECT_EQ(p.unpack(), ref);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(9);
    std::set<u64> seen;
    for (int i = 0; i < 3000; ++i) {
        const u64 v = rng.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues reached
}

TEST(Rng, RangeInclusive)
{
    Rng rng(10);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const i64 v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
        sum += r;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ----------------------------------------------------------------
// Annotated concurrency primitives (common/annotations.hh)
// ----------------------------------------------------------------

TEST(Annotations, MutexExcludesConcurrentCriticalSections)
{
    Mutex mu;
    i64 counter = 0;
    std::vector<std::thread> threads;
    constexpr int kThreads = 4, kIters = 5000;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&]() {
            for (int i = 0; i < kIters; ++i) {
                const MutexLock lk(mu);
                ++counter;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, i64{kThreads} * kIters);
}

TEST(Annotations, TryLockReportsContention)
{
    Mutex mu;
    ASSERT_TRUE(mu.tryLock());
    // Same-thread re-acquisition must fail: std::mutex underneath.
    std::thread probe([&]() { EXPECT_FALSE(mu.tryLock()); });
    probe.join();
    mu.unlock();
    std::thread retry([&]() {
        EXPECT_TRUE(mu.tryLock());
        mu.unlock();
    });
    retry.join();
}

TEST(Annotations, CondVarHandshake)
{
    // Producer/consumer ping-pong through the annotated primitives:
    // the predicate loop is written at the call site, as the
    // analysis requires.
    Mutex mu;
    CondVar cv;
    int stage = 0;
    std::thread consumer([&]() {
        const MutexLock lk(mu);
        while (stage != 1)
            cv.wait(mu);
        stage = 2;
        cv.notifyAll();
    });
    {
        const MutexLock lk(mu);
        stage = 1;
        cv.notifyAll();
        while (stage != 2)
            cv.wait(mu);
    }
    consumer.join();
    EXPECT_EQ(stage, 2);
}

} // namespace
} // namespace genax
