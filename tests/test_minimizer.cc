/**
 * @file
 * Tests for minimizer selection and the sparse minimizer index:
 * window coverage guarantee, lookup correctness, density, and an
 * end-to-end mini-aligner built from minimizer anchors.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "readsim/eval.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "seed/minimizer.hh"
#include "swbase/anchor.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

TEST(Minimizer, EveryWindowContainsASelection)
{
    Rng rng(9000);
    const u32 k = 11, w = 8;
    const Seq s = randomSeq(rng, 5000);
    const auto mins = selectMinimizers(s, k, w);
    ASSERT_FALSE(mins.empty());

    std::vector<u8> selected(s.size() - k + 1, 0);
    for (const auto &m : mins)
        selected[m.pos] = 1;
    const u64 kmers = s.size() - k + 1;
    for (u64 win = 0; win + w <= kmers; ++win) {
        bool any = false;
        for (u64 j = win; j < win + w; ++j)
            any |= selected[j];
        EXPECT_TRUE(any) << "window " << win;
    }
}

TEST(Minimizer, DeterministicAndSortedByPosition)
{
    Rng rng(9001);
    const Seq s = randomSeq(rng, 2000);
    const auto a = selectMinimizers(s, 13, 10);
    const auto b = selectMinimizers(s, 13, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pos, b[i].pos);
        EXPECT_EQ(a[i].key, b[i].key);
        if (i > 0) {
            EXPECT_GT(a[i].pos, a[i - 1].pos);
        }
    }
}

TEST(Minimizer, ShortSequenceStillSelectsOne)
{
    const Seq s = encode("ACGTACGTACGT");
    const auto mins = selectMinimizers(s, 11, 10);
    EXPECT_EQ(mins.size(), 1u);
}

TEST(Minimizer, DensityNearTwoOverWPlusOne)
{
    Rng rng(9002);
    const Seq ref = randomSeq(rng, 200000);
    for (u32 w : {5u, 10u, 20u}) {
        MinimizerIndex index(ref, 13, w);
        EXPECT_NEAR(index.density(), 2.0 / (w + 1),
                    0.4 / (w + 1))
            << "w=" << w;
    }
}

TEST(MinimizerIndex, LookupFindsEverySelectedPosition)
{
    Rng rng(9003);
    const Seq ref = randomSeq(rng, 20000);
    const u32 k = 12, w = 8;
    MinimizerIndex index(ref, k, w);
    for (const auto &m : selectMinimizers(ref, k, w)) {
        const auto hits = index.lookup(m.key);
        EXPECT_TRUE(std::find(hits.begin(), hits.end(), m.pos) !=
                    hits.end());
        EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
    }
    // An absent key yields nothing.
    EXPECT_TRUE(index.lookup(0xdeadbeefdeadbeefULL).empty());
}

TEST(MinimizerIndex, ExactReadSeedsOnTruthDiagonal)
{
    Rng rng(9004);
    const Seq ref = randomSeq(rng, 100000);
    MinimizerIndex index(ref, 13, 8);
    for (int t = 0; t < 25; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 101));
        const Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        const auto seeds = index.seed(read);
        ASSERT_FALSE(seeds.empty());
        bool on_diagonal = false;
        for (const auto &s : seeds) {
            for (u32 h : s.positions)
                on_diagonal |= h == pos + s.qryBegin;
        }
        EXPECT_TRUE(on_diagonal) << "t=" << t;
    }
}

TEST(MinimizerIndex, SparserThanDenseKmerTables)
{
    Rng rng(9005);
    const Seq ref = randomSeq(rng, 100000);
    MinimizerIndex index(ref, 13, 10);
    // Dense position table: one entry per position (3 B hardware
    // width); the sketch keeps ~2/(w+1) of positions at 12 B each.
    const double dense_entries =
        static_cast<double>(ref.size() - 12);
    EXPECT_LT(static_cast<double>(index.footprintBytes()) / 12.0,
              dense_entries / 3.0);
}

TEST(MinimizerIndex, MiniAlignerMapsMutatedReads)
{
    // Minimizer anchors + the shared extension machinery form a
    // complete (if simple) aligner.
    RefGenConfig rcfg;
    rcfg.length = 150000;
    rcfg.seed = 17;
    const Seq ref = generateReference(rcfg);
    MinimizerIndex index(ref, 13, 8);

    ReadSimConfig rs;
    rs.numReads = 100;
    rs.seed = 18;
    const auto sim = simulateReads(ref, rs);

    const Scoring sc;
    const ExtendFn kernel = [&](const PackedSeq &rw, const Seq &q) {
        return gotohExtendKernel(rw, q, sc, 16);
    };
    AnchorConfig acfg;
    acfg.minSeedLen = 13; // minimizer seeds are exactly k long

    std::vector<Mapping> maps;
    for (const auto &r : sim) {
        Mapping best;
        for (bool reverse : {false, true}) {
            const Seq oriented =
                reverse ? reverseComplement(r.seq) : r.seq;
            const auto anchors = makeAnchors(index.seed(oriented), 0,
                                             reverse, acfg);
            for (const auto &anchor : anchors) {
                const Mapping m = extendAnchor(ref, oriented, anchor,
                                               sc, 16, kernel);
                if (!best.mapped || m.score > best.score)
                    best = m;
            }
        }
        maps.push_back(best);
    }
    const auto acc = evaluateAccuracy(sim, maps);
    EXPECT_GT(acc.correctFraction(), 0.93);
}

} // namespace
} // namespace genax
