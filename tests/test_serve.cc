/**
 * @file
 * Serving-layer tests: the latency histogram's bucket/quantile/merge
 * arithmetic, the framed wire protocol (round trips and corruption
 * rejection), the cross-client batcher (ordering, admission control,
 * shutdown semantics), and the full daemon stack end to end over a
 * real socket — including the served-vs-offline SAM byte-identity
 * contract and the serve.* fault-injection sites.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/faultinject.hh"
#include "common/histogram.hh"
#include "genax/pipeline.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "serve/batcher.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"

namespace genax {
namespace {

// ---------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------

TEST(Histogram, BucketOfIsFloorLog2)
{
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(2), 1u);
    EXPECT_EQ(LatencyHistogram::bucketOf(3), 1u);
    EXPECT_EQ(LatencyHistogram::bucketOf(4), 2u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1023), 9u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1024), 10u);
    EXPECT_EQ(LatencyHistogram::bucketOf(u64{1} << 40), 40u);
    for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_LT(LatencyHistogram::bucketLowNanos(i),
                  LatencyHistogram::bucketHighNanos(i));
}

TEST(Histogram, RecordAndBasicStats)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantileSeconds(0.5), 0.0);
    h.recordNanos(100);
    h.recordNanos(200);
    h.recordNanos(400);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sumNanos(), 700u);
    EXPECT_EQ(h.maxNanos(), 400u);
    EXPECT_DOUBLE_EQ(h.meanSeconds(), 700.0 / 3 / 1e9);
    EXPECT_DOUBLE_EQ(h.maxSeconds(), 400e-9);
    h.recordSeconds(-1.0); // clamps to zero, lands in bucket 0
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, QuantilesAreMonotonicAndBounded)
{
    LatencyHistogram h;
    for (u64 i = 1; i <= 1000; ++i)
        h.recordNanos(i * 1000); // 1 us .. 1 ms, uniform
    const double q0 = h.quantileSeconds(0.0);
    const double q50 = h.quantileSeconds(0.5);
    const double q99 = h.quantileSeconds(0.99);
    const double q100 = h.quantileSeconds(1.0);
    EXPECT_LE(q0, q50);
    EXPECT_LE(q50, q99);
    EXPECT_LE(q99, q100);
    EXPECT_LE(q100, h.maxSeconds() + 1e-12);
    // Log buckets give ~2x relative resolution: the median of a
    // uniform 1us..1ms sample must land within a factor of two of
    // the true 0.5 ms.
    EXPECT_GE(q50, 0.25e-3);
    EXPECT_LE(q50, 1.0e-3);
}

TEST(Histogram, MergeIsOrderInvariantAndLossless)
{
    LatencyHistogram whole, shard_a, shard_b;
    for (u64 i = 0; i < 500; ++i) {
        const u64 ns = (i * 2654435761u) % 1000000;
        whole.recordNanos(ns);
        (i % 2 ? shard_a : shard_b).recordNanos(ns);
    }
    LatencyHistogram ab = shard_a, ba = shard_b;
    ab.merge(shard_b);
    ba.merge(shard_a);
    for (const auto *m : {&ab, &ba}) {
        EXPECT_EQ(m->count(), whole.count());
        EXPECT_EQ(m->sumNanos(), whole.sumNanos());
        EXPECT_EQ(m->maxNanos(), whole.maxNanos());
        for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
            EXPECT_EQ(m->bucketCount(i), whole.bucketCount(i));
        for (const double q : {0.5, 0.9, 0.99})
            EXPECT_DOUBLE_EQ(m->quantileSeconds(q),
                             whole.quantileSeconds(q));
    }
}

// ---------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip)
{
    const std::string payload = "serving bytes \x01\x02\x00 ok";
    const std::string wire =
        encodeFrame(FrameType::AlignResponse, payload);
    ASSERT_GE(wire.size(), sizeof(FrameHeader));
    const auto hdr = decodeFrameHeader(wire.data());
    ASSERT_TRUE(hdr.ok()) << hdr.status().str();
    EXPECT_EQ(static_cast<FrameType>(hdr->type),
              FrameType::AlignResponse);
    EXPECT_EQ(hdr->payloadBytes, payload.size());
    const std::string_view body(wire.data() + sizeof(FrameHeader),
                                wire.size() - sizeof(FrameHeader));
    EXPECT_TRUE(validateFramePayload(*hdr, body).ok());
}

TEST(ServeProtocol, CorruptionIsRejected)
{
    const std::string payload(300, 'x');
    std::string wire = encodeFrame(FrameType::AlignRequest, payload);

    // Bad magic: not a serve stream.
    {
        std::string t = wire;
        t[0] ^= 0x5a;
        EXPECT_FALSE(decodeFrameHeader(t.data()).ok());
    }
    // A flipped header field fails the header checksum.
    {
        std::string t = wire;
        t[9] ^= 0x01; // inside payloadBytes
        EXPECT_FALSE(decodeFrameHeader(t.data()).ok());
    }
    // A flipped payload byte fails the payload checksum.
    {
        std::string t = wire;
        t[sizeof(FrameHeader) + 100] ^= 0x01;
        const auto hdr = decodeFrameHeader(t.data());
        ASSERT_TRUE(hdr.ok());
        const std::string_view body(t.data() + sizeof(FrameHeader),
                                    t.size() - sizeof(FrameHeader));
        EXPECT_FALSE(validateFramePayload(*hdr, body).ok());
    }
}

std::vector<FastqRecord>
someReads()
{
    std::vector<FastqRecord> reads(3);
    reads[0].name = "alpha";
    reads[0].seq = {0, 1, 2, 3, 3, 2};
    reads[0].qual = {30, 31, 32, 33, 34, 35};
    reads[1].name = ""; // empty name survives the trip
    reads[1].seq = {3};
    reads[1].qual = {2};
    reads[2].name = "gamma";
    return reads;
}

TEST(ServeProtocol, AlignRequestRoundTrip)
{
    const auto reads = someReads();
    const std::string payload = encodeAlignRequest(reads);
    const auto back = decodeAlignRequest(payload);
    ASSERT_TRUE(back.ok()) << back.status().str();
    ASSERT_EQ(back->size(), reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        EXPECT_EQ((*back)[i].name, reads[i].name);
        EXPECT_EQ((*back)[i].seq, reads[i].seq);
        EXPECT_EQ((*back)[i].qual, reads[i].qual);
    }
}

TEST(ServeProtocol, AlignRequestRejectsDamage)
{
    auto reads = someReads();
    // A non-2-bit base code is a protocol violation, not a crash.
    reads[0].seq[2] = 7;
    EXPECT_FALSE(
        decodeAlignRequest(encodeAlignRequest(reads)).ok());
    reads[0].seq[2] = 2;

    const std::string payload = encodeAlignRequest(reads);
    EXPECT_FALSE(decodeAlignRequest(payload + "x").ok());
    EXPECT_FALSE(
        decodeAlignRequest(
            std::string_view(payload.data(), payload.size() - 3))
            .ok());
    EXPECT_FALSE(decodeAlignRequest("").ok());
}

TEST(ServeProtocol, AlignResponseAndErrorRoundTrip)
{
    const std::vector<std::string> lines = {"r1\t0\tchr1\n", "",
                                            "r3\t4\t*\n"};
    const auto back = decodeAlignResponse(encodeAlignResponse(lines));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, lines);

    const Status s = invalidInputError("bad batch");
    Status carried;
    ASSERT_TRUE(decodeError(encodeError(s), carried).ok());
    EXPECT_EQ(carried.code(), s.code());
    EXPECT_EQ(carried.message(), s.message());

    // A status code outside the enum must not decode.
    std::string forged = encodeError(s);
    forged[0] = static_cast<char>(0xee);
    Status out;
    EXPECT_FALSE(decodeError(forged, out).ok());
}

// ---------------------------------------------------------------
// Service + batcher against the offline pipeline
// ---------------------------------------------------------------

struct Workload
{
    std::vector<FastaRecord> ref;
    std::vector<FastqRecord> reads;
};

Workload
makeWorkload()
{
    RefGenConfig rcfg;
    rcfg.length = 20000;
    rcfg.seed = 97531;
    const Seq ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.numReads = 80;
    rs.seed = 13579;
    const auto sim = simulateReads(ref, rs);

    Workload w;
    w.ref.resize(1);
    w.ref[0].name = "serve_ref";
    w.ref[0].seq = ref;
    w.reads.resize(sim.size());
    for (size_t i = 0; i < sim.size(); ++i) {
        w.reads[i].name = "r" + std::to_string(i);
        w.reads[i].seq = sim[i].seq;
        w.reads[i].qual = sim[i].qual;
    }
    return w;
}

/** Offline SAM (header included) over `reads` with the pipeline
 *  config the serving tests mirror. */
std::string
offlineSam(const Workload &w, const std::vector<FastqRecord> &reads)
{
    PipelineOptions opts;
    opts.segments = 6;
    std::ostringstream sink;
    const auto res = alignToSam(w.ref, reads, sink, opts);
    EXPECT_TRUE(res.ok()) << res.status().str();
    return sink.str();
}

ServiceConfig
serviceConfig(unsigned threads = 1)
{
    ServiceConfig cfg;
    cfg.segments = 6;
    cfg.threads = threads;
    return cfg;
}

std::vector<std::vector<FastqRecord>>
slice(const std::vector<FastqRecord> &reads, size_t slices)
{
    std::vector<std::vector<FastqRecord>> out(slices);
    const size_t per = (reads.size() + slices - 1) / slices;
    for (size_t i = 0; i < reads.size(); ++i)
        out[i / per].push_back(reads[i]);
    return out;
}

TEST(AlignServiceTest, BatchMatchesOfflinePipelineByteForByte)
{
    const Workload w = makeWorkload();
    auto svc = AlignService::create(w.ref, serviceConfig());
    ASSERT_TRUE(svc.ok()) << svc.status().str();

    const BatchOutcome out = (*svc)->alignBatch(w.reads);
    ASSERT_EQ(out.samLines.size(), w.reads.size());
    ASSERT_EQ(out.outcomes.size(), w.reads.size());
    EXPECT_EQ(out.mapped + out.unmapped + out.degraded,
              w.reads.size());
    EXPECT_GT(out.mapped, 0u);

    std::string served = (*svc)->headerText();
    for (const auto &line : out.samLines)
        served += line;
    EXPECT_EQ(served, offlineSam(w, w.reads));
    (*svc)->finish();
}

TEST(BatcherTest, ConcurrentClientsEachGetTheirOwnSliceInOrder)
{
    const Workload w = makeWorkload();
    auto svc = AlignService::create(w.ref, serviceConfig());
    ASSERT_TRUE(svc.ok()) << svc.status().str();

    BatcherConfig bcfg;
    bcfg.batchReads = 16; // force cross-request batches
    bcfg.batchWaitSeconds = 0.001;
    Batcher batcher(**svc, bcfg);

    const auto slices = slice(w.reads, 4);
    std::vector<std::string> served(slices.size());
    std::vector<std::thread> threads;
    for (size_t c = 0; c < slices.size(); ++c) {
        threads.emplace_back([&, c] {
            const std::string tenant = "t" + std::to_string(c);
            auto lines = batcher.align(tenant, slices[c]);
            ASSERT_TRUE(lines.ok()) << lines.status().str();
            served[c] = (*svc)->headerText();
            for (const auto &line : *lines)
                served[c] += line;
        });
    }
    for (auto &t : threads)
        t.join();
    for (size_t c = 0; c < slices.size(); ++c)
        EXPECT_EQ(served[c], offlineSam(w, slices[c]))
            << "slice " << c;

    const auto snap = batcher.stats();
    EXPECT_EQ(snap.tenants.size(), slices.size());
    EXPECT_GT(snap.batches, 0u);
    EXPECT_EQ(snap.total.count(), slices.size());
    const std::string text = Batcher::statsText(snap);
    EXPECT_NE(text.find("batches:"), std::string::npos);
    EXPECT_NE(text.find("queue-wait:"), std::string::npos);
    EXPECT_NE(text.find("tenant t0:"), std::string::npos);

    batcher.stop();
    (*svc)->finish();
}

TEST(BatcherTest, RejectWhenFullShedsWithResourceExhausted)
{
    const Workload w = makeWorkload();
    auto svc = AlignService::create(w.ref, serviceConfig());
    ASSERT_TRUE(svc.ok()) << svc.status().str();

    BatcherConfig bcfg;
    bcfg.batchReads = 1000000; // never fills
    bcfg.batchWaitSeconds = 30.0;
    bcfg.queueReads = 4;
    bcfg.rejectWhenFull = true;
    Batcher batcher(**svc, bcfg);

    // First request: admitted even though it exceeds the bound (an
    // empty queue always admits), then parks until stop().
    Status parked_status = okStatus();
    std::thread parked([&] {
        auto r = batcher.align(
            "parked",
            std::vector<FastqRecord>(w.reads.begin(),
                                     w.reads.begin() + 8));
        parked_status = r.status();
    });
    while (batcher.stats().queuedReads < 8)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Second request: the queue is over its bound, shed cleanly.
    auto shed = batcher.align(
        "shed", std::vector<FastqRecord>(w.reads.begin(),
                                         w.reads.begin() + 8));
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::ResourceExhausted);

    batcher.stop();
    parked.join();
    EXPECT_EQ(parked_status.code(), StatusCode::Unavailable);

    const auto snap = batcher.stats();
    ASSERT_NE(snap.tenants.find("shed"), snap.tenants.end());
    EXPECT_EQ(snap.tenants.at("shed").rejected, 1u);
    (*svc)->finish();
}

TEST(BatcherTest, AlignAfterStopIsUnavailable)
{
    const Workload w = makeWorkload();
    auto svc = AlignService::create(w.ref, serviceConfig());
    ASSERT_TRUE(svc.ok()) << svc.status().str();
    BatcherConfig bcfg;
    Batcher batcher(**svc, bcfg);
    batcher.stop();
    auto r = batcher.align(
        "late", std::vector<FastqRecord>(w.reads.begin(),
                                         w.reads.begin() + 2));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Unavailable);
    (*svc)->finish();
}

// ---------------------------------------------------------------
// End to end over a real socket
// ---------------------------------------------------------------

struct Stack
{
    std::unique_ptr<AlignService> svc;
    std::unique_ptr<Batcher> batcher;
    std::unique_ptr<Server> server;

    Stack() = default;
    Stack(Stack &&) = default;

    ~Stack()
    {
        if (server)
            server->stop();
        if (svc)
            svc->finish();
    }
};

Stack
startStack(const Workload &w, const BatcherConfig &bcfg = {})
{
    Stack s;
    auto svc = AlignService::create(w.ref, serviceConfig());
    EXPECT_TRUE(svc.ok()) << svc.status().str();
    s.svc = std::move(svc).value();
    s.batcher = std::make_unique<Batcher>(*s.svc, bcfg);
    s.server = std::make_unique<Server>(*s.svc, *s.batcher);
    const auto ep = Endpoint::parse("tcp:0");
    EXPECT_TRUE(ep.ok());
    const Status st = s.server->start(*ep);
    EXPECT_TRUE(st.ok()) << st.str();
    return s;
}

TEST(ServeEndToEnd, ConcurrentClientsGetByteIdenticalSam)
{
    const Workload w = makeWorkload();
    BatcherConfig bcfg;
    bcfg.batchReads = 24;
    Stack s = startStack(w, bcfg);
    const Endpoint ep = s.server->boundEndpoint();

    const auto slices = slice(w.reads, 3);
    std::vector<std::string> served(slices.size());
    std::vector<std::thread> threads;
    for (size_t c = 0; c < slices.size(); ++c) {
        threads.emplace_back([&, c] {
            auto conn = ServeClient::connect(
                ep, "client" + std::to_string(c));
            ASSERT_TRUE(conn.ok()) << conn.status().str();
            std::string sam = conn->samHeader();
            // Odd request size so requests straddle batches.
            for (size_t i = 0; i < slices[c].size(); i += 5) {
                const size_t n =
                    std::min<size_t>(5, slices[c].size() - i);
                auto lines = conn->align(std::vector<FastqRecord>(
                    slices[c].begin() + static_cast<long>(i),
                    slices[c].begin() + static_cast<long>(i + n)));
                ASSERT_TRUE(lines.ok()) << lines.status().str();
                for (const auto &line : *lines)
                    sam += line;
            }
            conn.value().close();
            served[c] = std::move(sam);
        });
    }
    for (auto &t : threads)
        t.join();
    for (size_t c = 0; c < slices.size(); ++c)
        EXPECT_EQ(served[c], offlineSam(w, slices[c]))
            << "client " << c;

    // Stats round trip through the protocol.
    auto conn = ServeClient::connect(ep, "stats");
    ASSERT_TRUE(conn.ok());
    auto text = conn->stats();
    ASSERT_TRUE(text.ok()) << text.status().str();
    EXPECT_NE(text->find("batches:"), std::string::npos);
    conn.value().close();
}

TEST(ServeEndToEnd, MalformedAlignRequestGetsCleanErrorFrame)
{
    const Workload w = makeWorkload();
    Stack s = startStack(w);
    const Endpoint ep = s.server->boundEndpoint();

    auto sock = Socket::connectTo(ep, 5.0);
    ASSERT_TRUE(sock.ok()) << sock.status().str();
    ASSERT_TRUE(sock->sendFrame(FrameType::Hello, "raw").ok());
    auto ack = sock->recvFrame();
    ASSERT_TRUE(ack.ok());
    ASSERT_EQ(ack->type, FrameType::HelloAck);

    // Garbage payload in a well-formed frame: the daemon answers
    // with an Error frame and drops the stream, not the process.
    ASSERT_TRUE(
        sock->sendFrame(FrameType::AlignRequest, "garbage!").ok());
    auto reply = sock->recvFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().str();
    ASSERT_EQ(reply->type, FrameType::Error);
    Status carried;
    ASSERT_TRUE(decodeError(reply->payload, carried).ok());
    EXPECT_EQ(carried.code(), StatusCode::InvalidInput);
    auto after = sock->recvFrame();
    EXPECT_FALSE(after.ok());
}

TEST(ServeEndToEnd, NonHelloFirstFrameIsRejected)
{
    const Workload w = makeWorkload();
    Stack s = startStack(w);

    auto sock = Socket::connectTo(s.server->boundEndpoint(), 5.0);
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock->sendFrame(FrameType::StatsRequest, "").ok());
    auto reply = sock->recvFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().str();
    EXPECT_EQ(reply->type, FrameType::Error);
}

TEST(ServeEndToEnd, WriteFaultSurfacesAsCleanIoError)
{
    const Workload w = makeWorkload();
    Stack s = startStack(w);
    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    fi.arm(fault::kServeWriteEio, {.probability = 1.0, .seed = 7});
    auto conn = ServeClient::connect(s.server->boundEndpoint(),
                                     "doomed", 2.0);
    fi.reset();
    ASSERT_FALSE(conn.ok());
    EXPECT_NE(conn.status().str().find(fault::kServeWriteEio),
              std::string::npos)
        << conn.status().str();
}

TEST(ServeEndToEnd, AcceptFaultDropsOneConnectionDaemonSurvives)
{
    const Workload w = makeWorkload();
    Stack s = startStack(w);
    const Endpoint ep = s.server->boundEndpoint();
    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    fi.arm(fault::kServeAcceptFail, {.fireOnNth = 1});

    // First connection: accepted and immediately dropped — the
    // client sees a dead handshake, never a hang.
    auto doomed = ServeClient::connect(ep, "doomed", 2.0);
    EXPECT_FALSE(doomed.ok());
    fi.reset();

    // The daemon survived and serves the next client normally.
    auto conn = ServeClient::connect(ep, "fine", 5.0);
    ASSERT_TRUE(conn.ok()) << conn.status().str();
    auto lines = conn->align(std::vector<FastqRecord>(
        w.reads.begin(), w.reads.begin() + 3));
    ASSERT_TRUE(lines.ok()) << lines.status().str();
    EXPECT_EQ(lines->size(), 3u);
    conn.value().close();
}

TEST(ServeEndToEnd, ReadShortFaultTearsTheHandshakeCleanly)
{
    const Workload w = makeWorkload();
    Stack s = startStack(w);
    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    fi.arm(fault::kServeReadShort, {.fireOnNth = 1});
    // Whichever side's receive fires first, the handshake must fail
    // with a clean Status — no hang, no torn frame accepted.
    auto conn = ServeClient::connect(s.server->boundEndpoint(),
                                     "torn", 2.0);
    fi.reset();
    EXPECT_FALSE(conn.ok());
}

} // namespace
} // namespace genax
