file(REMOVE_RECURSE
  "CMakeFiles/ablation_fm.dir/ablation_fm.cc.o"
  "CMakeFiles/ablation_fm.dir/ablation_fm.cc.o.d"
  "ablation_fm"
  "ablation_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
