# Empty dependencies file for ablation_fm.
# This may be replaced when dependencies are built.
