# Empty compiler generated dependencies file for fig13_traceback_rerun.
# This may be replaced when dependencies are built.
