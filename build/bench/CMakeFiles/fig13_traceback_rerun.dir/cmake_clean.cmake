file(REMOVE_RECURSE
  "CMakeFiles/fig13_traceback_rerun.dir/fig13_traceback_rerun.cc.o"
  "CMakeFiles/fig13_traceback_rerun.dir/fig13_traceback_rerun.cc.o.d"
  "fig13_traceback_rerun"
  "fig13_traceback_rerun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_traceback_rerun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
