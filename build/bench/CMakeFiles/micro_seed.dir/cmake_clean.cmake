file(REMOVE_RECURSE
  "CMakeFiles/micro_seed.dir/micro_seed.cc.o"
  "CMakeFiles/micro_seed.dir/micro_seed.cc.o.d"
  "micro_seed"
  "micro_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
