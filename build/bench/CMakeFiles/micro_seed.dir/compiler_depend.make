# Empty compiler generated dependencies file for micro_seed.
# This may be replaced when dependencies are built.
