# Empty compiler generated dependencies file for fig15_genax_system.
# This may be replaced when dependencies are built.
