file(REMOVE_RECURSE
  "CMakeFiles/fig15_genax_system.dir/fig15_genax_system.cc.o"
  "CMakeFiles/fig15_genax_system.dir/fig15_genax_system.cc.o.d"
  "fig15_genax_system"
  "fig15_genax_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_genax_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
