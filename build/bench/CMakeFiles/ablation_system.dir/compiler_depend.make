# Empty compiler generated dependencies file for ablation_system.
# This may be replaced when dependencies are built.
