file(REMOVE_RECURSE
  "CMakeFiles/ablation_system.dir/ablation_system.cc.o"
  "CMakeFiles/ablation_system.dir/ablation_system.cc.o.d"
  "ablation_system"
  "ablation_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
