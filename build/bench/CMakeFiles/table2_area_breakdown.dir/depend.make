# Empty dependencies file for table2_area_breakdown.
# This may be replaced when dependencies are built.
