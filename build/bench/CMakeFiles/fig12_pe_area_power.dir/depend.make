# Empty dependencies file for fig12_pe_area_power.
# This may be replaced when dependencies are built.
