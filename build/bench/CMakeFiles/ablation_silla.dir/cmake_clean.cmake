file(REMOVE_RECURSE
  "CMakeFiles/ablation_silla.dir/ablation_silla.cc.o"
  "CMakeFiles/ablation_silla.dir/ablation_silla.cc.o.d"
  "ablation_silla"
  "ablation_silla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_silla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
