# Empty compiler generated dependencies file for ablation_silla.
# This may be replaced when dependencies are built.
