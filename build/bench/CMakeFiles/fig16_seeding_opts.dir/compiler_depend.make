# Empty compiler generated dependencies file for fig16_seeding_opts.
# This may be replaced when dependencies are built.
