file(REMOVE_RECURSE
  "CMakeFiles/fig16_seeding_opts.dir/fig16_seeding_opts.cc.o"
  "CMakeFiles/fig16_seeding_opts.dir/fig16_seeding_opts.cc.o.d"
  "fig16_seeding_opts"
  "fig16_seeding_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_seeding_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
