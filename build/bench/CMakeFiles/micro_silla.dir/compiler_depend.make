# Empty compiler generated dependencies file for micro_silla.
# This may be replaced when dependencies are built.
