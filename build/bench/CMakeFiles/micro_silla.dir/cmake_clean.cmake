file(REMOVE_RECURSE
  "CMakeFiles/micro_silla.dir/micro_silla.cc.o"
  "CMakeFiles/micro_silla.dir/micro_silla.cc.o.d"
  "micro_silla"
  "micro_silla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_silla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
