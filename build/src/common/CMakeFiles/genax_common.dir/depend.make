# Empty dependencies file for genax_common.
# This may be replaced when dependencies are built.
