file(REMOVE_RECURSE
  "CMakeFiles/genax_common.dir/dna.cc.o"
  "CMakeFiles/genax_common.dir/dna.cc.o.d"
  "CMakeFiles/genax_common.dir/logging.cc.o"
  "CMakeFiles/genax_common.dir/logging.cc.o.d"
  "libgenax_common.a"
  "libgenax_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
