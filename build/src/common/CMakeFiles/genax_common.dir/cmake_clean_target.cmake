file(REMOVE_RECURSE
  "libgenax_common.a"
)
