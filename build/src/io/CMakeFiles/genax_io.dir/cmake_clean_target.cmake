file(REMOVE_RECURSE
  "libgenax_io.a"
)
