# Empty compiler generated dependencies file for genax_io.
# This may be replaced when dependencies are built.
