file(REMOVE_RECURSE
  "CMakeFiles/genax_io.dir/fasta.cc.o"
  "CMakeFiles/genax_io.dir/fasta.cc.o.d"
  "CMakeFiles/genax_io.dir/fastq.cc.o"
  "CMakeFiles/genax_io.dir/fastq.cc.o.d"
  "CMakeFiles/genax_io.dir/sam.cc.o"
  "CMakeFiles/genax_io.dir/sam.cc.o.d"
  "libgenax_io.a"
  "libgenax_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
