file(REMOVE_RECURSE
  "CMakeFiles/genax_seed.dir/cam.cc.o"
  "CMakeFiles/genax_seed.dir/cam.cc.o.d"
  "CMakeFiles/genax_seed.dir/fm_index.cc.o"
  "CMakeFiles/genax_seed.dir/fm_index.cc.o.d"
  "CMakeFiles/genax_seed.dir/fm_seeder.cc.o"
  "CMakeFiles/genax_seed.dir/fm_seeder.cc.o.d"
  "CMakeFiles/genax_seed.dir/kmer_index.cc.o"
  "CMakeFiles/genax_seed.dir/kmer_index.cc.o.d"
  "CMakeFiles/genax_seed.dir/minimizer.cc.o"
  "CMakeFiles/genax_seed.dir/minimizer.cc.o.d"
  "CMakeFiles/genax_seed.dir/segment.cc.o"
  "CMakeFiles/genax_seed.dir/segment.cc.o.d"
  "CMakeFiles/genax_seed.dir/smem_engine.cc.o"
  "CMakeFiles/genax_seed.dir/smem_engine.cc.o.d"
  "libgenax_seed.a"
  "libgenax_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
