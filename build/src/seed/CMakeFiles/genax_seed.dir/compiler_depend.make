# Empty compiler generated dependencies file for genax_seed.
# This may be replaced when dependencies are built.
