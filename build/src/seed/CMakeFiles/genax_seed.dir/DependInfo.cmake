
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seed/cam.cc" "src/seed/CMakeFiles/genax_seed.dir/cam.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/cam.cc.o.d"
  "/root/repo/src/seed/fm_index.cc" "src/seed/CMakeFiles/genax_seed.dir/fm_index.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/fm_index.cc.o.d"
  "/root/repo/src/seed/fm_seeder.cc" "src/seed/CMakeFiles/genax_seed.dir/fm_seeder.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/fm_seeder.cc.o.d"
  "/root/repo/src/seed/kmer_index.cc" "src/seed/CMakeFiles/genax_seed.dir/kmer_index.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/kmer_index.cc.o.d"
  "/root/repo/src/seed/minimizer.cc" "src/seed/CMakeFiles/genax_seed.dir/minimizer.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/minimizer.cc.o.d"
  "/root/repo/src/seed/segment.cc" "src/seed/CMakeFiles/genax_seed.dir/segment.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/segment.cc.o.d"
  "/root/repo/src/seed/smem_engine.cc" "src/seed/CMakeFiles/genax_seed.dir/smem_engine.cc.o" "gcc" "src/seed/CMakeFiles/genax_seed.dir/smem_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
