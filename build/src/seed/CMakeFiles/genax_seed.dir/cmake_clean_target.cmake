file(REMOVE_RECURSE
  "libgenax_seed.a"
)
