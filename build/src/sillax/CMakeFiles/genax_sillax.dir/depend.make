# Empty dependencies file for genax_sillax.
# This may be replaced when dependencies are built.
