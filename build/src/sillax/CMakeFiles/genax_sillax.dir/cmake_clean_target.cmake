file(REMOVE_RECURSE
  "libgenax_sillax.a"
)
