file(REMOVE_RECURSE
  "CMakeFiles/genax_sillax.dir/comparator_array.cc.o"
  "CMakeFiles/genax_sillax.dir/comparator_array.cc.o.d"
  "CMakeFiles/genax_sillax.dir/edit_machine.cc.o"
  "CMakeFiles/genax_sillax.dir/edit_machine.cc.o.d"
  "CMakeFiles/genax_sillax.dir/lane.cc.o"
  "CMakeFiles/genax_sillax.dir/lane.cc.o.d"
  "CMakeFiles/genax_sillax.dir/scoring_machine.cc.o"
  "CMakeFiles/genax_sillax.dir/scoring_machine.cc.o.d"
  "CMakeFiles/genax_sillax.dir/tech_model.cc.o"
  "CMakeFiles/genax_sillax.dir/tech_model.cc.o.d"
  "CMakeFiles/genax_sillax.dir/tile.cc.o"
  "CMakeFiles/genax_sillax.dir/tile.cc.o.d"
  "libgenax_sillax.a"
  "libgenax_sillax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_sillax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
