
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sillax/comparator_array.cc" "src/sillax/CMakeFiles/genax_sillax.dir/comparator_array.cc.o" "gcc" "src/sillax/CMakeFiles/genax_sillax.dir/comparator_array.cc.o.d"
  "/root/repo/src/sillax/edit_machine.cc" "src/sillax/CMakeFiles/genax_sillax.dir/edit_machine.cc.o" "gcc" "src/sillax/CMakeFiles/genax_sillax.dir/edit_machine.cc.o.d"
  "/root/repo/src/sillax/lane.cc" "src/sillax/CMakeFiles/genax_sillax.dir/lane.cc.o" "gcc" "src/sillax/CMakeFiles/genax_sillax.dir/lane.cc.o.d"
  "/root/repo/src/sillax/scoring_machine.cc" "src/sillax/CMakeFiles/genax_sillax.dir/scoring_machine.cc.o" "gcc" "src/sillax/CMakeFiles/genax_sillax.dir/scoring_machine.cc.o.d"
  "/root/repo/src/sillax/tech_model.cc" "src/sillax/CMakeFiles/genax_sillax.dir/tech_model.cc.o" "gcc" "src/sillax/CMakeFiles/genax_sillax.dir/tech_model.cc.o.d"
  "/root/repo/src/sillax/tile.cc" "src/sillax/CMakeFiles/genax_sillax.dir/tile.cc.o" "gcc" "src/sillax/CMakeFiles/genax_sillax.dir/tile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/silla/CMakeFiles/genax_silla.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/genax_align.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
