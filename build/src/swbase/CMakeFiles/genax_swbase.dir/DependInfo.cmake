
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swbase/anchor.cc" "src/swbase/CMakeFiles/genax_swbase.dir/anchor.cc.o" "gcc" "src/swbase/CMakeFiles/genax_swbase.dir/anchor.cc.o.d"
  "/root/repo/src/swbase/bwamem_like.cc" "src/swbase/CMakeFiles/genax_swbase.dir/bwamem_like.cc.o" "gcc" "src/swbase/CMakeFiles/genax_swbase.dir/bwamem_like.cc.o.d"
  "/root/repo/src/swbase/paired.cc" "src/swbase/CMakeFiles/genax_swbase.dir/paired.cc.o" "gcc" "src/swbase/CMakeFiles/genax_swbase.dir/paired.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/genax_align.dir/DependInfo.cmake"
  "/root/repo/build/src/seed/CMakeFiles/genax_seed.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
