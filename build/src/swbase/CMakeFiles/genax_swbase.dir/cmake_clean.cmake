file(REMOVE_RECURSE
  "CMakeFiles/genax_swbase.dir/anchor.cc.o"
  "CMakeFiles/genax_swbase.dir/anchor.cc.o.d"
  "CMakeFiles/genax_swbase.dir/bwamem_like.cc.o"
  "CMakeFiles/genax_swbase.dir/bwamem_like.cc.o.d"
  "CMakeFiles/genax_swbase.dir/paired.cc.o"
  "CMakeFiles/genax_swbase.dir/paired.cc.o.d"
  "libgenax_swbase.a"
  "libgenax_swbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_swbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
