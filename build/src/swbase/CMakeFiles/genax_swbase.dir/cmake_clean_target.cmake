file(REMOVE_RECURSE
  "libgenax_swbase.a"
)
