# Empty compiler generated dependencies file for genax_swbase.
# This may be replaced when dependencies are built.
