# Empty compiler generated dependencies file for genax_align.
# This may be replaced when dependencies are built.
