file(REMOVE_RECURSE
  "libgenax_align.a"
)
