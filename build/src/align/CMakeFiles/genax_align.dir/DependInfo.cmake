
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/cigar.cc" "src/align/CMakeFiles/genax_align.dir/cigar.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/cigar.cc.o.d"
  "/root/repo/src/align/edit_distance.cc" "src/align/CMakeFiles/genax_align.dir/edit_distance.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/edit_distance.cc.o.d"
  "/root/repo/src/align/gotoh.cc" "src/align/CMakeFiles/genax_align.dir/gotoh.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/gotoh.cc.o.d"
  "/root/repo/src/align/lev_automaton.cc" "src/align/CMakeFiles/genax_align.dir/lev_automaton.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/lev_automaton.cc.o.d"
  "/root/repo/src/align/myers.cc" "src/align/CMakeFiles/genax_align.dir/myers.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/myers.cc.o.d"
  "/root/repo/src/align/ula.cc" "src/align/CMakeFiles/genax_align.dir/ula.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/ula.cc.o.d"
  "/root/repo/src/align/wavefront.cc" "src/align/CMakeFiles/genax_align.dir/wavefront.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/wavefront.cc.o.d"
  "/root/repo/src/align/wfa.cc" "src/align/CMakeFiles/genax_align.dir/wfa.cc.o" "gcc" "src/align/CMakeFiles/genax_align.dir/wfa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
