file(REMOVE_RECURSE
  "CMakeFiles/genax_align.dir/cigar.cc.o"
  "CMakeFiles/genax_align.dir/cigar.cc.o.d"
  "CMakeFiles/genax_align.dir/edit_distance.cc.o"
  "CMakeFiles/genax_align.dir/edit_distance.cc.o.d"
  "CMakeFiles/genax_align.dir/gotoh.cc.o"
  "CMakeFiles/genax_align.dir/gotoh.cc.o.d"
  "CMakeFiles/genax_align.dir/lev_automaton.cc.o"
  "CMakeFiles/genax_align.dir/lev_automaton.cc.o.d"
  "CMakeFiles/genax_align.dir/myers.cc.o"
  "CMakeFiles/genax_align.dir/myers.cc.o.d"
  "CMakeFiles/genax_align.dir/ula.cc.o"
  "CMakeFiles/genax_align.dir/ula.cc.o.d"
  "CMakeFiles/genax_align.dir/wavefront.cc.o"
  "CMakeFiles/genax_align.dir/wavefront.cc.o.d"
  "CMakeFiles/genax_align.dir/wfa.cc.o"
  "CMakeFiles/genax_align.dir/wfa.cc.o.d"
  "libgenax_align.a"
  "libgenax_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
