file(REMOVE_RECURSE
  "libgenax_readsim.a"
)
