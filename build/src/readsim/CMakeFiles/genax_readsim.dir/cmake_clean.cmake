file(REMOVE_RECURSE
  "CMakeFiles/genax_readsim.dir/readsim.cc.o"
  "CMakeFiles/genax_readsim.dir/readsim.cc.o.d"
  "CMakeFiles/genax_readsim.dir/refgen.cc.o"
  "CMakeFiles/genax_readsim.dir/refgen.cc.o.d"
  "libgenax_readsim.a"
  "libgenax_readsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_readsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
