
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/readsim/readsim.cc" "src/readsim/CMakeFiles/genax_readsim.dir/readsim.cc.o" "gcc" "src/readsim/CMakeFiles/genax_readsim.dir/readsim.cc.o.d"
  "/root/repo/src/readsim/refgen.cc" "src/readsim/CMakeFiles/genax_readsim.dir/refgen.cc.o" "gcc" "src/readsim/CMakeFiles/genax_readsim.dir/refgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
