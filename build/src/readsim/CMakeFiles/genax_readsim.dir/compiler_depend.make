# Empty compiler generated dependencies file for genax_readsim.
# This may be replaced when dependencies are built.
