file(REMOVE_RECURSE
  "CMakeFiles/genax_system.dir/dram_model.cc.o"
  "CMakeFiles/genax_system.dir/dram_model.cc.o.d"
  "CMakeFiles/genax_system.dir/pipeline.cc.o"
  "CMakeFiles/genax_system.dir/pipeline.cc.o.d"
  "CMakeFiles/genax_system.dir/seeding_sim.cc.o"
  "CMakeFiles/genax_system.dir/seeding_sim.cc.o.d"
  "CMakeFiles/genax_system.dir/system.cc.o"
  "CMakeFiles/genax_system.dir/system.cc.o.d"
  "libgenax_system.a"
  "libgenax_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
