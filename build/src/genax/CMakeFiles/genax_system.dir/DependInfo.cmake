
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genax/dram_model.cc" "src/genax/CMakeFiles/genax_system.dir/dram_model.cc.o" "gcc" "src/genax/CMakeFiles/genax_system.dir/dram_model.cc.o.d"
  "/root/repo/src/genax/pipeline.cc" "src/genax/CMakeFiles/genax_system.dir/pipeline.cc.o" "gcc" "src/genax/CMakeFiles/genax_system.dir/pipeline.cc.o.d"
  "/root/repo/src/genax/seeding_sim.cc" "src/genax/CMakeFiles/genax_system.dir/seeding_sim.cc.o" "gcc" "src/genax/CMakeFiles/genax_system.dir/seeding_sim.cc.o.d"
  "/root/repo/src/genax/system.cc" "src/genax/CMakeFiles/genax_system.dir/system.cc.o" "gcc" "src/genax/CMakeFiles/genax_system.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swbase/CMakeFiles/genax_swbase.dir/DependInfo.cmake"
  "/root/repo/build/src/seed/CMakeFiles/genax_seed.dir/DependInfo.cmake"
  "/root/repo/build/src/sillax/CMakeFiles/genax_sillax.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/genax_io.dir/DependInfo.cmake"
  "/root/repo/build/src/silla/CMakeFiles/genax_silla.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/genax_align.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
