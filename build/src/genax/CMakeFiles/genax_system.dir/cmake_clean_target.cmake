file(REMOVE_RECURSE
  "libgenax_system.a"
)
