# Empty compiler generated dependencies file for genax_system.
# This may be replaced when dependencies are built.
