file(REMOVE_RECURSE
  "libgenax_silla.a"
)
