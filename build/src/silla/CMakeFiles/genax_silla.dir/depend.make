# Empty dependencies file for genax_silla.
# This may be replaced when dependencies are built.
