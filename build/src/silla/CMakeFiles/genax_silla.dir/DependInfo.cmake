
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/silla/indel_silla.cc" "src/silla/CMakeFiles/genax_silla.dir/indel_silla.cc.o" "gcc" "src/silla/CMakeFiles/genax_silla.dir/indel_silla.cc.o.d"
  "/root/repo/src/silla/silla_edit.cc" "src/silla/CMakeFiles/genax_silla.dir/silla_edit.cc.o" "gcc" "src/silla/CMakeFiles/genax_silla.dir/silla_edit.cc.o.d"
  "/root/repo/src/silla/silla_score.cc" "src/silla/CMakeFiles/genax_silla.dir/silla_score.cc.o" "gcc" "src/silla/CMakeFiles/genax_silla.dir/silla_score.cc.o.d"
  "/root/repo/src/silla/silla_traceback.cc" "src/silla/CMakeFiles/genax_silla.dir/silla_traceback.cc.o" "gcc" "src/silla/CMakeFiles/genax_silla.dir/silla_traceback.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genax_common.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/genax_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
