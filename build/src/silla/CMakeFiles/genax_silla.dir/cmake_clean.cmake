file(REMOVE_RECURSE
  "CMakeFiles/genax_silla.dir/indel_silla.cc.o"
  "CMakeFiles/genax_silla.dir/indel_silla.cc.o.d"
  "CMakeFiles/genax_silla.dir/silla_edit.cc.o"
  "CMakeFiles/genax_silla.dir/silla_edit.cc.o.d"
  "CMakeFiles/genax_silla.dir/silla_score.cc.o"
  "CMakeFiles/genax_silla.dir/silla_score.cc.o.d"
  "CMakeFiles/genax_silla.dir/silla_traceback.cc.o"
  "CMakeFiles/genax_silla.dir/silla_traceback.cc.o.d"
  "libgenax_silla.a"
  "libgenax_silla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_silla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
