# Empty compiler generated dependencies file for variant_calling.
# This may be replaced when dependencies are built.
