# Empty dependencies file for aligner_demo.
# This may be replaced when dependencies are built.
