file(REMOVE_RECURSE
  "CMakeFiles/aligner_demo.dir/aligner_demo.cpp.o"
  "CMakeFiles/aligner_demo.dir/aligner_demo.cpp.o.d"
  "aligner_demo"
  "aligner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aligner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
