# Empty dependencies file for longread_scaling.
# This may be replaced when dependencies are built.
