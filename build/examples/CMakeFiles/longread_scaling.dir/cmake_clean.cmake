file(REMOVE_RECURSE
  "CMakeFiles/longread_scaling.dir/longread_scaling.cpp.o"
  "CMakeFiles/longread_scaling.dir/longread_scaling.cpp.o.d"
  "longread_scaling"
  "longread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
