file(REMOVE_RECURSE
  "CMakeFiles/genax_align_tool.dir/genax_align.cc.o"
  "CMakeFiles/genax_align_tool.dir/genax_align.cc.o.d"
  "genax_align"
  "genax_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_align_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
