# Empty dependencies file for genax_align_tool.
# This may be replaced when dependencies are built.
