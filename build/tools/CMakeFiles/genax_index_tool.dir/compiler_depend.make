# Empty compiler generated dependencies file for genax_index_tool.
# This may be replaced when dependencies are built.
