file(REMOVE_RECURSE
  "CMakeFiles/genax_index_tool.dir/genax_index.cc.o"
  "CMakeFiles/genax_index_tool.dir/genax_index.cc.o.d"
  "genax_index"
  "genax_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genax_index_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
