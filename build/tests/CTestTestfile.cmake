# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_readsim[1]_include.cmake")
include("/root/repo/build/tests/test_silla[1]_include.cmake")
include("/root/repo/build/tests/test_sillax[1]_include.cmake")
include("/root/repo/build/tests/test_seed[1]_include.cmake")
include("/root/repo/build/tests/test_swbase[1]_include.cmake")
include("/root/repo/build/tests/test_genax[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_paired[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_fm[1]_include.cmake")
include("/root/repo/build/tests/test_seeding_sim[1]_include.cmake")
include("/root/repo/build/tests/test_minimizer[1]_include.cmake")
