# Empty dependencies file for test_minimizer.
# This may be replaced when dependencies are built.
