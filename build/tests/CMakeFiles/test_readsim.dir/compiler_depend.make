# Empty compiler generated dependencies file for test_readsim.
# This may be replaced when dependencies are built.
