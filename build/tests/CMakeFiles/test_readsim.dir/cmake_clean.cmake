file(REMOVE_RECURSE
  "CMakeFiles/test_readsim.dir/test_readsim.cc.o"
  "CMakeFiles/test_readsim.dir/test_readsim.cc.o.d"
  "test_readsim"
  "test_readsim.pdb"
  "test_readsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
