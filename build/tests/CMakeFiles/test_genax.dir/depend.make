# Empty dependencies file for test_genax.
# This may be replaced when dependencies are built.
