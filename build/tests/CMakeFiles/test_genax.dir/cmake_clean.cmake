file(REMOVE_RECURSE
  "CMakeFiles/test_genax.dir/test_genax.cc.o"
  "CMakeFiles/test_genax.dir/test_genax.cc.o.d"
  "test_genax"
  "test_genax.pdb"
  "test_genax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
