file(REMOVE_RECURSE
  "CMakeFiles/test_sillax.dir/test_sillax.cc.o"
  "CMakeFiles/test_sillax.dir/test_sillax.cc.o.d"
  "test_sillax"
  "test_sillax.pdb"
  "test_sillax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sillax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
