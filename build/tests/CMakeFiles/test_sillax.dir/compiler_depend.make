# Empty compiler generated dependencies file for test_sillax.
# This may be replaced when dependencies are built.
