# Empty dependencies file for test_silla.
# This may be replaced when dependencies are built.
