file(REMOVE_RECURSE
  "CMakeFiles/test_silla.dir/test_silla.cc.o"
  "CMakeFiles/test_silla.dir/test_silla.cc.o.d"
  "test_silla"
  "test_silla.pdb"
  "test_silla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_silla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
