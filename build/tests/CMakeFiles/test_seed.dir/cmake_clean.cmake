file(REMOVE_RECURSE
  "CMakeFiles/test_seed.dir/test_seed.cc.o"
  "CMakeFiles/test_seed.dir/test_seed.cc.o.d"
  "test_seed"
  "test_seed.pdb"
  "test_seed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
