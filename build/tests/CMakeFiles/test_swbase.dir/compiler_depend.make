# Empty compiler generated dependencies file for test_swbase.
# This may be replaced when dependencies are built.
