file(REMOVE_RECURSE
  "CMakeFiles/test_swbase.dir/test_swbase.cc.o"
  "CMakeFiles/test_swbase.dir/test_swbase.cc.o.d"
  "test_swbase"
  "test_swbase.pdb"
  "test_swbase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
