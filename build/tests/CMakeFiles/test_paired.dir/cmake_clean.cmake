file(REMOVE_RECURSE
  "CMakeFiles/test_paired.dir/test_paired.cc.o"
  "CMakeFiles/test_paired.dir/test_paired.cc.o.d"
  "test_paired"
  "test_paired.pdb"
  "test_paired[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paired.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
