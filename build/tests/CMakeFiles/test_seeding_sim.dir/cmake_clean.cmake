file(REMOVE_RECURSE
  "CMakeFiles/test_seeding_sim.dir/test_seeding_sim.cc.o"
  "CMakeFiles/test_seeding_sim.dir/test_seeding_sim.cc.o.d"
  "test_seeding_sim"
  "test_seeding_sim.pdb"
  "test_seeding_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seeding_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
