# Empty compiler generated dependencies file for test_seeding_sim.
# This may be replaced when dependencies are built.
