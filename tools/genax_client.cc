/**
 * @file
 * genax_client — genax_serve client and synthetic load generator.
 *
 * Single-client mode (default):
 *
 *   genax_client --connect unix:/tmp/genax.sock --reads reads.fq
 *                --out out.sam [--reads-per-request N]
 *                [--tenant NAME]
 *
 * Streams the FASTQ through the daemon in requests of N reads and
 * writes the returned SAM. Output is all-or-nothing: the file is
 * written only after every request round-tripped, so a daemon that
 * dies mid-conversation leaves no partial SAM behind (the client
 * exits 3 with the transport error instead). The written bytes are
 * identical to an offline `genax_align --index` run over the same
 * reads.
 *
 * Load-generator mode (--clients N):
 *
 *   genax_client --connect ... --reads reads.fq --clients 64
 *                [--repeat R] [--reads-per-request N] [--stats]
 *
 * Spawns N concurrent connections, each sending R requests cycling
 * through the read file, and reports sustained reads/s plus
 * p50/p99/max request latency across all clients.
 *
 * Exit codes: 0 success; 2 usage error; 3 transport/serve error.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hh"
#include "io/fastq.hh"
#include "io/reader.hh"
#include "serve/client.hh"

using namespace genax;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

void
printHelp(const char *prog, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s --connect ENDPOINT --reads reads.fq\n"
        "          (--out out.sam | --clients N) [options]\n"
        "\n"
        "Client and load generator for genax_serve.\n"
        "\n"
        "options:\n"
        "  --connect ENDPOINT    unix:PATH, tcp:PORT or\n"
        "                        tcp:HOST:PORT (required)\n"
        "  --reads FILE          reads FASTQ (required)\n"
        "  --out FILE            write the returned SAM here\n"
        "                        (single-client mode; all-or-nothing)\n"
        "  --reads-per-request N reads per align request (default 16)\n"
        "  --tenant NAME         client identity in the daemon's\n"
        "                        ledger (default: client-PID or\n"
        "                        loadgen-K)\n"
        "  --clients N           load-generator mode: N concurrent\n"
        "                        connections\n"
        "  --repeat R            requests per client in load mode\n"
        "                        (default 4)\n"
        "  --timeout S           connect timeout seconds (default 5)\n"
        "  --stats               fetch and print the daemon's serving\n"
        "                        stats when done\n"
        "  -h, --help            show this help and exit\n"
        "\n"
        "exit codes: 0 success; 2 usage error; 3 transport/serve "
        "error\n",
        prog);
}

[[noreturn]] void
usageError(const char *prog, const char *msg)
{
    std::fprintf(stderr, "%s: %s\n", prog, msg);
    printHelp(prog, stderr);
    std::exit(kExitUsage);
}

/** Split `reads` into slices of `per` for request framing. */
std::vector<std::vector<FastqRecord>>
sliceRequests(const std::vector<FastqRecord> &reads, u64 per)
{
    std::vector<std::vector<FastqRecord>> out;
    for (size_t i = 0; i < reads.size(); i += per) {
        const size_t n = std::min<size_t>(per, reads.size() - i);
        out.emplace_back(reads.begin() + static_cast<long>(i),
                         reads.begin() + static_cast<long>(i + n));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string connect, reads_path, out_path, tenant;
    u64 per_request = 16;
    u64 clients = 0;
    u64 repeat = 4;
    double timeout = 5.0;
    bool want_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(argv[0],
                           ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--connect") {
            connect = next();
        } else if (arg == "--reads") {
            reads_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--reads-per-request") {
            per_request = static_cast<u64>(std::atoll(next()));
            if (per_request == 0)
                usageError(argv[0],
                           "--reads-per-request must be >= 1");
        } else if (arg == "--tenant") {
            tenant = next();
        } else if (arg == "--clients") {
            clients = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--repeat") {
            repeat = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--timeout") {
            timeout = std::atof(next());
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--help" || arg == "-h") {
            printHelp(argv[0], stdout);
            return kExitOk;
        } else {
            usageError(argv[0],
                       ("unknown option: " + arg).c_str());
        }
    }
    if (connect.empty() || reads_path.empty())
        usageError(argv[0], "--connect and --reads are required");
    if (out_path.empty() && clients == 0)
        usageError(argv[0],
                   "either --out (single client) or --clients N "
                   "(load generator) is required");

    const auto endpoint = Endpoint::parse(connect);
    if (!endpoint.ok()) {
        std::fprintf(stderr, "genax_client: %s\n",
                     endpoint.status().str().c_str());
        return kExitUsage;
    }

    auto parsed = readFastqFile(reads_path, ReaderOptions{});
    if (!parsed.ok()) {
        std::fprintf(stderr, "genax_client: %s\n",
                     parsed.status().str().c_str());
        return kExitError;
    }
    const std::vector<FastqRecord> reads = std::move(parsed).value();
    if (reads.empty()) {
        std::fprintf(stderr, "genax_client: %s has no reads\n",
                     reads_path.c_str());
        return kExitError;
    }
    const auto requests = sliceRequests(reads, per_request);

    if (clients == 0) {
        // Single-client mode: round-trip everything, then write.
        if (tenant.empty())
            tenant = "client";
        auto conn = ServeClient::connect(*endpoint, tenant, timeout);
        if (!conn.ok()) {
            std::fprintf(stderr, "genax_client: %s\n",
                         conn.status().str().c_str());
            return kExitError;
        }
        std::string sam = conn->samHeader();
        for (const auto &req : requests) {
            auto lines = conn->align(req);
            if (!lines.ok()) {
                std::fprintf(stderr, "genax_client: %s\n",
                             lines.status().str().c_str());
                return kExitError; // nothing written: no partial SAM
            }
            for (const auto &line : *lines)
                sam += line;
        }
        if (want_stats) {
            auto text = conn->stats();
            if (text.ok())
                std::fprintf(stderr, "%s", text->c_str());
        }
        conn.value().close();
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr,
                         "genax_client: cannot open %s\n",
                         out_path.c_str());
            return kExitError;
        }
        out.write(sam.data(),
                  static_cast<std::streamsize>(sam.size()));
        out.flush();
        if (!out) {
            std::fprintf(stderr,
                         "genax_client: failed writing %s\n",
                         out_path.c_str());
            return kExitError;
        }
        std::fprintf(stderr,
                     "genax_client: %llu reads in %zu requests -> "
                     "%s\n",
                     static_cast<unsigned long long>(reads.size()),
                     requests.size(), out_path.c_str());
        return kExitOk;
    }

    // Load-generator mode: N clients, each `repeat` requests
    // cycling through the request slices.
    struct WorkerResult
    {
        LatencyHistogram latency;
        u64 reads = 0;
        u64 errors = 0;
        std::string firstError;
    };
    std::vector<WorkerResult> results(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            WorkerResult &res = results[c];
            const std::string name =
                tenant.empty() ? "loadgen-" + std::to_string(c)
                               : tenant;
            auto conn =
                ServeClient::connect(*endpoint, name, timeout);
            if (!conn.ok()) {
                ++res.errors;
                res.firstError = conn.status().str();
                return;
            }
            for (u64 r = 0; r < repeat; ++r) {
                const auto &req = requests[r % requests.size()];
                const auto s =
                    std::chrono::steady_clock::now();
                auto lines = conn->align(req);
                const auto e =
                    std::chrono::steady_clock::now();
                if (!lines.ok()) {
                    ++res.errors;
                    if (res.firstError.empty())
                        res.firstError = lines.status().str();
                    continue;
                }
                res.latency.recordNanos(static_cast<u64>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(e - s)
                        .count()));
                res.reads += req.size();
            }
            conn.value().close();
        });
    }
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();

    LatencyHistogram latency;
    u64 total_reads = 0, total_errors = 0;
    std::string first_error;
    for (const auto &res : results) {
        latency.merge(res.latency);
        total_reads += res.reads;
        total_errors += res.errors;
        if (first_error.empty() && !res.firstError.empty())
            first_error = res.firstError;
    }
    const double reads_per_s =
        seconds > 0 ? static_cast<double>(total_reads) / seconds
                    : 0.0;
    std::printf(
        "clients=%llu requests=%llu reads=%llu errors=%llu "
        "seconds=%.3f reads_per_s=%.1f p50_ms=%.3f p99_ms=%.3f "
        "max_ms=%.3f\n",
        static_cast<unsigned long long>(clients),
        static_cast<unsigned long long>(latency.count()),
        static_cast<unsigned long long>(total_reads),
        static_cast<unsigned long long>(total_errors), seconds,
        reads_per_s, latency.quantileSeconds(0.5) * 1e3,
        latency.quantileSeconds(0.99) * 1e3,
        latency.maxSeconds() * 1e3);
    if (total_errors > 0)
        std::fprintf(stderr, "genax_client: first error: %s\n",
                     first_error.c_str());
    if (want_stats) {
        auto conn =
            ServeClient::connect(*endpoint, "loadgen-stats", timeout);
        if (conn.ok()) {
            auto text = conn->stats();
            if (text.ok())
                std::fprintf(stderr, "%s", text->c_str());
        }
    }
    return total_errors == 0 ? kExitOk : kExitError;
}
