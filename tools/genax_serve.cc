/**
 * @file
 * genax_serve — load-once alignment daemon.
 *
 *   genax_serve --ref ref.fa --listen unix:/tmp/genax.sock
 *               [--index snapshot.gxs] [--engine genax|sw] [--k 12]
 *               [--band 40] [--segments 8] [--threads 1]
 *               [--batch-reads 64] [--batch-wait-ms 2]
 *               [--queue-reads 4096] [--reject-when-full]
 *               [--max-malformed N] [--inject SPEC]
 *
 * Loads the reference (and, with --index, mmaps the prebuilt index
 * snapshot zero-copy) exactly once, then serves concurrent clients
 * over a Unix-domain or TCP socket. Requests from all clients
 * aggregate into cross-client engine batches (a batch flushes when
 * it fills or when its oldest request has waited --batch-wait-ms),
 * so the amortized cost per request is alignment, not startup.
 *
 * Snapshot semantics match genax_align --index: a corrupt or missing
 * snapshot degrades to rebuild-from-FASTA (the daemon still starts,
 * noting the fallback); a snapshot built from a different reference
 * is a hard startup error.
 *
 * On SIGINT/SIGTERM the daemon stops accepting, fails pending
 * requests with clean Error frames, closes the engine stream and
 * prints the serving ledger (per-tenant counts and queue/engine/total
 * latency histograms) to stderr.
 *
 * Exit codes: 0 clean shutdown; 2 usage error; 3 startup failure.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/faultinject.hh"
#include "io/reader.hh"
#include "serve/server.hh"

using namespace genax;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
printHelp(const char *prog, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s --ref ref.fa --listen ENDPOINT [options]\n"
        "\n"
        "Long-lived alignment daemon: loads the reference (and index\n"
        "snapshot) once and serves concurrent clients with\n"
        "cross-client dynamic batching.\n"
        "\n"
        "options:\n"
        "  --ref FILE          reference FASTA (required)\n"
        "  --listen ENDPOINT   unix:PATH, tcp:PORT or tcp:HOST:PORT\n"
        "                      (required; tcp:0 picks a free port,\n"
        "                      printed on the readiness line)\n"
        "  --index FILE        prebuilt index snapshot (mmap\n"
        "                      zero-copy; corrupt -> rebuild\n"
        "                      fallback, wrong reference -> error)\n"
        "  --engine genax|sw   accelerator model or software\n"
        "                      baseline (default genax)\n"
        "  --k K               seeding k-mer length (default 12)\n"
        "  --band K            edit bound (default 40)\n"
        "  --segments N        GenAx genome segments (default 8)\n"
        "  --threads N         engine worker threads (default 1;\n"
        "                      0 = all hardware threads)\n"
        "  --batch-reads N     flush a batch at N pending reads\n"
        "                      (default 64)\n"
        "  --batch-wait-ms MS  flush when the oldest request waited\n"
        "                      MS milliseconds (default 2)\n"
        "  --queue-reads N     admission bound on queued reads\n"
        "                      (default 4096)\n"
        "  --reject-when-full  shed requests with a clean error\n"
        "                      frame instead of blocking producers\n"
        "  --max-malformed N   malformed reference records tolerated\n"
        "                      (default 1000)\n"
        "  --inject SPEC       arm fault-injection sites (also\n"
        "                      GENAX_FAULT_INJECT in the environment)\n"
        "  -h, --help          show this help and exit\n"
        "\n"
        "The daemon prints 'genax_serve: listening on ENDPOINT' to\n"
        "stdout once it accepts connections, and a serving ledger to\n"
        "stderr on shutdown (SIGINT/SIGTERM).\n"
        "\n"
        "exit codes: 0 clean shutdown; 2 usage error; 3 startup "
        "failure\n",
        prog);
}

[[noreturn]] void
usageError(const char *prog, const char *msg)
{
    std::fprintf(stderr, "%s: %s\n", prog, msg);
    printHelp(prog, stderr);
    std::exit(kExitUsage);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ref, listen, inject;
    ServiceConfig cfg;
    BatcherConfig bcfg;
    u64 max_malformed = 1000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(argv[0],
                           ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--ref") {
            ref = next();
        } else if (arg == "--listen") {
            listen = next();
        } else if (arg == "--index") {
            cfg.indexSnapshot = next();
        } else if (arg == "--engine") {
            const std::string e = next();
            if (e == "genax") {
                cfg.engine = PipelineOptions::Engine::GenAx;
            } else if (e == "sw") {
                cfg.engine = PipelineOptions::Engine::Software;
            } else {
                usageError(argv[0], "--engine must be genax or sw");
            }
        } else if (arg == "--k") {
            cfg.k = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--band") {
            cfg.band = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--segments") {
            cfg.segments = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--threads") {
            cfg.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--batch-reads") {
            bcfg.batchReads = static_cast<u64>(std::atoll(next()));
            if (bcfg.batchReads == 0)
                usageError(argv[0], "--batch-reads must be >= 1");
        } else if (arg == "--batch-wait-ms") {
            bcfg.batchWaitSeconds = std::atof(next()) / 1e3;
        } else if (arg == "--queue-reads") {
            bcfg.queueReads = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--reject-when-full") {
            bcfg.rejectWhenFull = true;
        } else if (arg == "--max-malformed") {
            max_malformed = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--inject") {
            inject = next();
        } else if (arg == "--help" || arg == "-h") {
            printHelp(argv[0], stdout);
            return kExitOk;
        } else {
            usageError(argv[0],
                       ("unknown option: " + arg).c_str());
        }
    }
    if (ref.empty() || listen.empty())
        usageError(argv[0], "--ref and --listen are required");

    if (const Status st = FaultInjector::instance().configureFromEnv();
        !st.ok()) {
        std::fprintf(stderr, "GENAX_FAULT_INJECT: %s\n",
                     st.str().c_str());
        return kExitUsage;
    }
    if (!inject.empty()) {
        if (const Status st =
                FaultInjector::instance().configure(inject);
            !st.ok()) {
            std::fprintf(stderr, "--inject: %s\n", st.str().c_str());
            return kExitUsage;
        }
    }

    const auto endpoint = Endpoint::parse(listen);
    if (!endpoint.ok()) {
        std::fprintf(stderr, "genax_serve: %s\n",
                     endpoint.status().str().c_str());
        return kExitUsage;
    }

    // Load once: everything below this point is paid exactly one
    // time per daemon lifetime, never per request.
    ReaderOptions ropts;
    ropts.maxMalformed = max_malformed;
    auto parsed = readFastaFile(ref, ropts);
    if (!parsed.ok()) {
        std::fprintf(stderr, "genax_serve: %s\n",
                     parsed.status().str().c_str());
        return kExitError;
    }
    auto service =
        AlignService::create(std::move(parsed).value(), cfg);
    if (!service.ok()) {
        std::fprintf(stderr, "genax_serve: %s\n",
                     service.status().str().c_str());
        return kExitError;
    }
    AlignService &svc = **service;
    if (!svc.indexAttachment().note.empty())
        std::fprintf(stderr, "note: %s\n",
                     svc.indexAttachment().note.c_str());
    if (svc.softwareFallback())
        std::fprintf(stderr,
                     "note: serving on the software engine\n");

    Batcher batcher(svc, bcfg);
    Server server(svc, batcher);
    if (const Status st = server.start(*endpoint); !st.ok()) {
        std::fprintf(stderr, "genax_serve: %s\n", st.str().c_str());
        return kExitError;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // Readiness line: smoke tests and load generators wait for it.
    std::printf("genax_serve: listening on %s\n",
                server.boundEndpoint().str().c_str());
    std::fflush(stdout);

    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr, "genax_serve: shutting down\n");
    server.stop();
    svc.finish();

    const auto snap = batcher.stats();
    std::fprintf(stderr,
                 "served %llu connections, %llu reads\n%s",
                 static_cast<unsigned long long>(
                     server.connectionsServed()),
                 static_cast<unsigned long long>(svc.readsServed()),
                 Batcher::statsText(snap).c_str());
    return kExitOk;
}
