/**
 * @file
 * bench_report — perf-trajectory harness for the parallel batch
 * engine.
 *
 *   bench_report [--out BENCH_pipeline.json] [--check]
 *                [--genome N] [--reads N] [--mt-threads N]
 *                [--repeat N] [--kernel auto|scalar|sse41|avx2]
 *
 * Runs a fixed synthetic workload (pinned readsim seeds, so every
 * checkout measures the same bytes) through the two batch paths —
 * the software pipeline (BWA-MEM-like engine, SAM emission included)
 * and the GenAx hardware-model system — single-threaded and
 * multi-threaded, and writes a machine-readable JSON report for the
 * CI perf-smoke job and the repo's perf trajectory.
 *
 * Timings are host wall-clock best-of-N; the GenAx *modelled* cycle
 * results are identical at any thread count by design, so only the
 * host throughput is reported here.
 *
 * Every timed path reports both the *requested* and the *effective*
 * worker width (ThreadPool::resolveWidth clamps to the hardware
 * thread count) — a CI host with fewer cores than --mt-threads must
 * not silently publish "8-thread" numbers measured at width 1.
 *
 * --check gates `pipeline_software_mt_vs_st >= 2.0` (and the GenAx
 * MT path not slower than ST), but only when the *effective* MT
 * width is at least 4; below that real parallel speedup is not
 * attainable and the gate reports itself skipped, never silently
 * passed. A requested/effective width divergence is always recorded
 * in the report. When an MT leg clamps to the effective width of an
 * already-measured leg of the same path it reuses that measurement
 * (the pool resolves both to the identical configuration), so at one
 * effective worker the MT/ST ratios are exactly 1.0 — gated as a
 * parity check instead of the 2x gate.
 *
 * On the pinned default workload --check also gates genax-system
 * single-threaded throughput at >= 2x its PR 7 baseline (the
 * event-driven model must never regress back toward lock-step
 * speed) and the `genax_system_vs_software` ratio at >= 0.5 (the
 * cycle-accurate model must hold at least half the software
 * baseline's host throughput — the headline metric of the
 * event-batched extension work). The report records that ratio and
 * the GenAx host-phase profile (seeding-sim / extension /
 * bookkeeping host seconds) so the model's next bottleneck is
 * measured, not guessed.
 *
 * The report also records peak RSS (getrusage) for the streaming
 * batch pipeline (--batch-reads 64) vs the load-all path, each
 * measured in its own forked child so the high-water marks are
 * independent.
 *
 * The report also carries a `kernels` section measuring the
 * alignment microkernels directly (ns per DP cell, scalar reference
 * vs the active SIMD tier) and records the dispatch tier in the
 * `host` block so CI can assert the SIMD path was actually live.
 * --kernel forces a dispatch tier for the whole run (exit 2 if the
 * tier is unknown or unsupported on this host).
 *
 * The `serve` section measures the serving layer end to end: an
 * in-process genax_serve stack (AlignService + Batcher + Server)
 * listens on a Unix-domain socket (TCP loopback fallback) and
 * 8/64/256 concurrent client threads stream the pinned reads through
 * it in 16-read requests. Each sweep point reports sustained reads/s
 * and p50/p99/max request latency. --check gates the 64-client
 * batched throughput at >= the single-client `pipeline-software`
 * streaming leg — the load-once + cross-client-batching claim: a
 * daemon that amortizes startup across requests must beat an offline
 * run that pays index construction every invocation. The gate
 * auto-skips only when socket setup is impossible on the host (the
 * report then records the reason).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#define GENAX_BENCH_HAVE_RUSAGE 1
#endif

#include "align/gotoh.hh"
#include "align/myers.hh"
#include "align/simd/batch_score.hh"
#include "align/simd/dispatch.hh"
#include "align/simd/myers_batch.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "genax/pipeline.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace genax;

namespace {

struct BenchOptions
{
    std::string out = "BENCH_pipeline.json";
    bool check = false;
    u64 genomeLen = 120000;
    u64 numReads = 600;
    unsigned mtThreads = 8;
    int repeat = 3;
    std::string kernel; //!< empty = leave dispatch on auto
};

constexpr u64 kWorkloadSeed = 424242; //!< pinned: do not change

struct PathResult
{
    std::string path;
    unsigned threadsRequested = 0;
    unsigned threadsEffective = 0;
    double seconds = 0;
    double readsPerSec = 0;
};

/** One streaming-vs-loadall memory data point. */
struct RssResult
{
    std::string mode;
    u64 batchReads = 0;
    u64 peakRssBytes = 0; //!< 0 = measurement unavailable
};

/**
 * Peak RSS of `fn` run in a forked child (so each measurement gets
 * its own high-water mark, uncontaminated by the parent or by the
 * other modes). Returns 0 when fork/getrusage are unavailable or the
 * child fails. Must run before the parent touches the process-wide
 * ThreadPool — the child is single-threaded by construction.
 */
template <typename Fn>
u64
peakRssOfChild(Fn &&fn)
{
#ifdef GENAX_BENCH_HAVE_RUSAGE
    const pid_t pid = fork();
    if (pid < 0)
        return 0;
    if (pid == 0)
        _exit(fn() ? 0 : 1);
    int status = 0;
    struct rusage ru = {};
    if (wait4(pid, &status, 0, &ru) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0)
        return 0;
    return static_cast<u64>(ru.ru_maxrss) * 1024; // ru_maxrss is KB
#else
    (void)fn;
    return 0;
#endif
}

template <typename Fn>
double
bestOfSeconds(int repeat, Fn &&fn)
{
    double best = 0;
    for (int i = 0; i < repeat; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (i == 0 || s < best)
            best = s;
    }
    return best;
}

struct KernelBench
{
    std::string name;
    double scalarNsPerCell = 0;
    double simdNsPerCell = 0;
    double speedup = 0;
};

/**
 * Microbenchmark the alignment kernels on a pinned batch shaped like
 * the extension stage's workload: high-identity queries against
 * packed reference windows. "ns per cell" uses the same nominal cell
 * count for the scalar and SIMD variants (they compute identical
 * DP problems), so the speedup column is exactly the time ratio.
 */
std::vector<KernelBench>
benchKernels(int repeat)
{
    Rng rng(kWorkloadSeed + 7);
    const Scoring sc;
    const u32 band = 16;
    constexpr size_t kJobs = 64;
    constexpr size_t kWin = 400;
    constexpr size_t kQry = 320;

    std::vector<Seq> queries(kJobs);
    std::vector<PackedSeq> windows(kJobs);
    for (size_t j = 0; j < kJobs; ++j) {
        Seq w(kWin);
        for (auto &b : w)
            b = static_cast<Base>(rng.below(4));
        Seq q(w.begin(), w.begin() + kQry);
        for (size_t e = 0; e < kQry / 20; ++e) // ~5% divergence
            q[rng.below(q.size())] = static_cast<Base>(rng.below(4));
        queries[j] = std::move(q);
        windows[j] = PackedSeq::packWindow(w, 0, w.size());
    }

    std::vector<simd::ExtendJob> ext_jobs;
    std::vector<simd::MyersJob> myers_jobs;
    u64 gotoh_cells = 0, myers_cells = 0;
    for (size_t j = 0; j < kJobs; ++j) {
        ext_jobs.push_back({&windows[j], &queries[j]});
        myers_jobs.push_back({&queries[j], &windows[j]});
        const u64 rows =
            std::min<u64>(windows[j].size(), queries[j].size() + band);
        gotoh_cells += rows * (2 * u64{band} + 1);
        myers_cells += queries[j].size() * windows[j].size();
    }

    // Fold every result into a sink the optimizer cannot drop.
    volatile i64 sink = 0;

    const double gotoh_scalar = bestOfSeconds(repeat, [&]() {
        for (size_t j = 0; j < kJobs; ++j) {
            const auto s =
                gotohBandedExtendScore(windows[j], queries[j], sc, band);
            sink = sink + s.score;
        }
    });
    const double gotoh_simd = bestOfSeconds(repeat, [&]() {
        const auto scores = simd::scoreCandidateBatch(ext_jobs, sc, band);
        for (const auto &s : scores)
            sink = sink + s.score;
    });

    const double myers_scalar = bestOfSeconds(repeat, [&]() {
        for (size_t j = 0; j < kJobs; ++j)
            sink = sink +
                   static_cast<i64>(
                       myersEditDistance(queries[j], windows[j]));
    });
    const double myers_simd = bestOfSeconds(repeat, [&]() {
        const auto dists = simd::myersEditDistanceBatch(myers_jobs);
        for (const u64 d : dists)
            sink = sink + static_cast<i64>(d);
    });

    auto make = [](const std::string &name, double scalar_s,
                   double simd_s, u64 cells) {
        KernelBench kb;
        kb.name = name;
        kb.scalarNsPerCell =
            scalar_s * 1e9 / static_cast<double>(cells);
        kb.simdNsPerCell = simd_s * 1e9 / static_cast<double>(cells);
        kb.speedup = simd_s > 0 ? scalar_s / simd_s : 0;
        return kb;
    };
    return {make("gotoh_banded_extend", gotoh_scalar, gotoh_simd,
                 gotoh_cells),
            make("myers_edit_distance", myers_scalar, myers_simd,
                 myers_cells)};
}

/** One serving-sweep data point: N concurrent clients. */
struct ServePoint
{
    u64 clients = 0;
    u64 requestsPerClient = 0;
    u64 reads = 0;
    u64 errors = 0;
    double seconds = 0;
    double readsPerSec = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    double maxMs = 0;
};

struct ServeBench
{
    bool available = false;
    std::string note; //!< why unavailable, or the bound endpoint
    std::string endpointKind;
    unsigned threads = 0;
    u64 batchReads = 0;
    std::vector<ServePoint> points;
};

/**
 * End-to-end serving sweep: the full genax_serve stack in-process
 * (load-once service, cross-client batcher, socket server) driven by
 * concurrent client threads over real sockets. The software engine
 * keeps the gate apples-to-apples with the `pipeline-software` legs:
 * same alignment work, but startup paid once and batches aggregated
 * across clients.
 */
ServeBench
benchServe(const std::vector<FastaRecord> &fasta,
           const std::vector<FastqRecord> &fastq,
           const BenchOptions &opt)
{
    ServeBench bench;

    ServiceConfig scfg;
    scfg.engine = PipelineOptions::Engine::Software;
    scfg.threads = opt.mtThreads;
    scfg.segments = 8;
    auto service = AlignService::create(fasta, scfg);
    if (!service.ok()) {
        bench.note = service.status().str();
        return bench;
    }
    AlignService &svc = **service;

    BatcherConfig bcfg;
    // Wider batches than the daemon default: the sweep's interesting
    // regime is saturation (64/256 clients keep >= 1024 reads
    // pending), where larger engine batches amortize wakeup/demux
    // rounds. Light load still flushes on the 2 ms deadline.
    bcfg.batchReads = 256;
    Batcher batcher(svc, bcfg);
    Server server(svc, batcher);

    // Unix-domain socket next to the report; TCP loopback when the
    // host rules that out (path too long for sockaddr_un, no AF_UNIX,
    // read-only cwd...). Both failing means sockets are impossible
    // here and the serve section reports itself unavailable.
    Status bind_error = okStatus();
    {
        const std::string sock_path = opt.out + ".serve.sock";
        auto ep = Endpoint::parse("unix:" + sock_path);
        Status st = ep.ok() ? server.start(*ep) : ep.status();
        if (!st.ok()) {
            bind_error = st;
            ep = Endpoint::parse("tcp:127.0.0.1:0");
            st = ep.ok() ? server.start(*ep) : ep.status();
        }
        if (!st.ok()) {
            bench.note = "unix: " + bind_error.str() +
                         "; tcp: " + st.str();
            batcher.stop();
            svc.finish();
            return bench;
        }
    }
    const Endpoint bound = server.boundEndpoint();
    bench.available = true;
    bench.note = bound.str();
    bench.endpointKind =
        bound.kind == Endpoint::Kind::Unix ? "unix" : "tcp";
    bench.threads = ThreadPool::resolveWidth(scfg.threads);
    bench.batchReads = bcfg.batchReads;

    // Request slices: the pinned reads in 16-read frames, cycled.
    constexpr u64 kReadsPerRequest = 16;
    std::vector<std::vector<FastqRecord>> requests;
    for (size_t i = 0; i < fastq.size(); i += kReadsPerRequest) {
        const size_t n =
            std::min<size_t>(kReadsPerRequest, fastq.size() - i);
        requests.emplace_back(fastq.begin() + static_cast<long>(i),
                              fastq.begin() +
                                  static_cast<long>(i + n));
    }

    // Enough total work that the sweep measures sustained throughput:
    // ~9600 reads per point, split across the point's clients. The
    // timed window opens *after* every client connected (a start
    // barrier) — connection setup and thread creation are a per-point
    // constant, not part of the sustained rate the gate compares.
    constexpr u64 kTargetReads = 9600;
    for (const u64 clients : {u64{8}, u64{64}, u64{256}}) {
        const u64 per_client = std::max<u64>(
            1, (kTargetReads + clients * kReadsPerRequest - 1) /
                   (clients * kReadsPerRequest));
        // Best-of-N like every other timed leg (the floor this sweep
        // is gated against is itself a best-of-N); latency histograms
        // keep every repeat's samples.
        ServePoint best;
        LatencyHistogram latency;
        u64 total_errors = 0;
        for (int rep = 0; rep < std::min(opt.repeat, 2); ++rep) {
            struct Worker
            {
                LatencyHistogram latency;
                u64 reads = 0;
                u64 errors = 0;
            };
            std::vector<Worker> workers(clients);
            std::vector<std::thread> threads;
            threads.reserve(clients);
            std::atomic<u64> ready{0};
            std::atomic<bool> go{false};
            for (u64 c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    Worker &w = workers[c];
                    auto conn = ServeClient::connect(
                        bound, "bench-" + std::to_string(c));
                    if (!conn.ok())
                        ++w.errors;
                    ready.fetch_add(1);
                    while (!go.load(std::memory_order_acquire))
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(100));
                    if (!conn.ok())
                        return;
                    for (u64 r = 0; r < per_client; ++r) {
                        const auto &req =
                            requests[(c + r) % requests.size()];
                        const auto s =
                            std::chrono::steady_clock::now();
                        auto lines = conn->align(req);
                        const auto e =
                            std::chrono::steady_clock::now();
                        if (!lines.ok()) {
                            ++w.errors;
                            continue;
                        }
                        w.latency.recordNanos(static_cast<u64>(
                            std::chrono::duration_cast<
                                std::chrono::nanoseconds>(e - s)
                                .count()));
                        w.reads += req.size();
                    }
                    conn.value().close();
                });
            }
            while (ready.load() < clients)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            const auto t0 = std::chrono::steady_clock::now();
            go.store(true, std::memory_order_release);
            for (auto &t : threads)
                t.join();
            const auto t1 = std::chrono::steady_clock::now();

            ServePoint p;
            p.clients = clients;
            p.requestsPerClient = per_client;
            for (const auto &w : workers) {
                latency.merge(w.latency);
                p.reads += w.reads;
                p.errors += w.errors;
            }
            p.seconds =
                std::chrono::duration<double>(t1 - t0).count();
            p.readsPerSec =
                p.seconds > 0
                    ? static_cast<double>(p.reads) / p.seconds
                    : 0;
            total_errors += p.errors;
            if (rep == 0 || p.readsPerSec > best.readsPerSec)
                best = p;
        }
        best.errors = total_errors;
        best.p50Ms = latency.quantileSeconds(0.5) * 1e3;
        best.p99Ms = latency.quantileSeconds(0.99) * 1e3;
        best.maxMs = latency.maxSeconds() * 1e3;
        bench.points.push_back(best);
        std::printf("  serve clients=%-3llu %8.3f s  %10.1f reads/s"
                    "  p50 %7.3f ms  p99 %7.3f ms  errors %llu\n",
                    static_cast<unsigned long long>(best.clients),
                    best.seconds, best.readsPerSec, best.p50Ms,
                    best.p99Ms,
                    static_cast<unsigned long long>(best.errors));
    }

    server.stop();
    svc.finish();
    return bench;
}

int
run(const BenchOptions &opt)
{
    // Fixed workload: pinned seeds make run-to-run and
    // checkout-to-checkout numbers comparable.
    RefGenConfig rcfg;
    rcfg.length = opt.genomeLen;
    rcfg.seed = kWorkloadSeed;
    const Seq ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.numReads = opt.numReads;
    rs.seed = kWorkloadSeed + 1;
    const auto sim = simulateReads(ref, rs);

    std::vector<FastaRecord> fasta(1);
    fasta[0].name = "bench_ref";
    fasta[0].seq = ref;
    std::vector<FastqRecord> fastq(sim.size());
    for (size_t i = 0; i < sim.size(); ++i) {
        fastq[i].name = "r" + std::to_string(i);
        fastq[i].seq = sim[i].seq;
        fastq[i].qual = sim[i].qual;
    }
    const u64 read_len = sim.empty() ? 0 : sim[0].seq.size();

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned effective_mt = ThreadPool::resolveWidth(opt.mtThreads);
    const std::string tier =
        kernelTierName(simd::activeKernelTier());
    std::printf("bench_report: %llu bp genome, %zu reads of %llu bp, "
                "%u hardware threads (MT runs: requested %u, "
                "effective %u), dispatch tier %s\n",
                static_cast<unsigned long long>(opt.genomeLen),
                fastq.size(),
                static_cast<unsigned long long>(read_len), hw,
                opt.mtThreads, effective_mt, tier.c_str());

    // Peak-RSS comparison, streaming vs load-all. Each mode runs in
    // a forked single-threaded child over the same on-disk workload,
    // so this must happen before anything touches the process-wide
    // ThreadPool (forking a threaded parent leaves a poisoned pool
    // in the child).
    std::vector<RssResult> memory;
    {
        const std::string ref_fa = opt.out + ".rss_ref.fa";
        const std::string reads_fq = opt.out + ".rss_reads.fq";
        const std::string out_sam = opt.out + ".rss_out.sam";
        {
            std::ofstream rf(ref_fa), qf(reads_fq);
            GENAX_CHECK(writeFasta(rf, fasta).ok(),
                        "failed writing RSS reference FASTA");
            // The load-all footprint scales with the read count; pad
            // the on-disk file until parsed-read storage dominates
            // the process baseline, or the comparison measures noise.
            constexpr u64 kRssReads = 40000;
            std::vector<FastqRecord> batch = fastq;
            for (u64 written = 0; written < kRssReads;
                 written += batch.size()) {
                for (size_t i = 0; i < batch.size(); ++i)
                    batch[i].name = "m" + std::to_string(written + i);
                GENAX_CHECK(writeFastq(qf, batch).ok(),
                            "failed writing RSS reads FASTQ");
            }
        }
        for (const u64 batch : {u64{64}, u64{0}}) {
            PipelineOptions popts;
            popts.engine = PipelineOptions::Engine::Software;
            popts.threads = 1;
            popts.batchReads = batch;
            RssResult r;
            r.mode = batch ? "stream-batch64" : "load-all";
            r.batchReads = batch;
            r.peakRssBytes = peakRssOfChild([&] {
                return alignFiles(ref_fa, reads_fq, out_sam, popts).ok();
            });
            memory.push_back(r);
            if (r.peakRssBytes)
                std::printf("  peak RSS %-14s %8.1f MB\n",
                            r.mode.c_str(), r.peakRssBytes / 1e6);
            else
                std::printf("  peak RSS %-14s unavailable\n",
                            r.mode.c_str());
        }
        std::remove(ref_fa.c_str());
        std::remove(reads_fq.c_str());
        std::remove(out_sam.c_str());
    }

    const auto kernels = benchKernels(opt.repeat);
    for (const auto &k : kernels)
        std::printf("  kernel %-22s scalar %7.3f ns/cell  simd %7.3f "
                    "ns/cell  speedup %5.2fx\n",
                    k.name.c_str(), k.scalarNsPerCell, k.simdNsPerCell,
                    k.speedup);

    std::vector<PathResult> results;
    GenAxHostProfile genax_profile; // ST GenAx run, last repeat
    auto timePath = [&](const std::string &path, unsigned threads,
                        PipelineOptions::Engine engine) {
        // A leg whose requested width clamps to the effective width
        // of an already-measured leg of the same path is the
        // *identical configuration* (the pool resolves both to the
        // same worker count) — re-timing it would publish the same
        // code path twice with independent noise, and on a 1-core
        // host could even report "MT slower than ST" out of thin
        // air. Reuse the measurement and say so.
        const unsigned eff = ThreadPool::resolveWidth(threads);
        for (const auto &r : results) {
            if (r.path == path && r.threadsEffective == eff) {
                PathResult dup = r;
                dup.threadsRequested = threads;
                results.push_back(dup);
                std::printf("  %-18s threads=%u/%u  reusing the "
                            "%u-thread leg (same effective width)\n",
                            path.c_str(), threads, eff,
                            r.threadsRequested);
                return;
            }
        }
        PipelineOptions popts;
        popts.engine = engine;
        popts.threads = threads;
        popts.segments = 8;
        const double sec = bestOfSeconds(opt.repeat, [&]() {
            std::ostringstream sink;
            const auto res = alignToSam(fasta, fastq, sink, popts);
            if (!res.ok()) {
                std::fprintf(stderr, "bench_report: %s failed: %s\n",
                             path.c_str(), res.status().str().c_str());
                std::exit(3);
            }
            if (engine == PipelineOptions::Engine::GenAx &&
                threads == 1)
                genax_profile = res->hostProfile;
        });
        PathResult r;
        r.path = path;
        r.threadsRequested = threads;
        r.threadsEffective = ThreadPool::resolveWidth(threads);
        r.seconds = sec;
        r.readsPerSec =
            sec > 0 ? static_cast<double>(fastq.size()) / sec : 0;
        results.push_back(r);
        std::printf("  %-18s threads=%u/%u %8.3f s  %10.1f reads/s\n",
                    path.c_str(), r.threadsRequested,
                    r.threadsEffective, r.seconds, r.readsPerSec);
    };

    timePath("pipeline-software", 1, PipelineOptions::Engine::Software);
    timePath("pipeline-software", opt.mtThreads,
             PipelineOptions::Engine::Software);
    timePath("genax-system", 1, PipelineOptions::Engine::GenAx);
    timePath("genax-system", opt.mtThreads,
             PipelineOptions::Engine::GenAx);

    auto throughput = [&](const std::string &path,
                          unsigned threads) -> double {
        for (const auto &r : results)
            if (r.path == path && r.threadsRequested == threads)
                return r.readsPerSec;
        return 0;
    };
    const double sw_speedup =
        throughput("pipeline-software", opt.mtThreads) /
        std::max(1e-12, throughput("pipeline-software", 1));
    const double gx_speedup =
        throughput("genax-system", opt.mtThreads) /
        std::max(1e-12, throughput("genax-system", 1));
    std::printf("  speedup at %u effective threads: software %.2fx, "
                "genax %.2fx\n",
                effective_mt, sw_speedup, gx_speedup);

    // Model-vs-software gap, single-threaded: how much slower the
    // cycle-accurate model runs than the software it models (1.0 =
    // parity). Tracked so a model regression shows up as a trajectory
    // break, not as a mystery CI slowdown.
    const double gx_vs_sw =
        throughput("genax-system", 1) /
        std::max(1e-12, throughput("pipeline-software", 1));
    std::printf("  genax-system runs at %.2fx of pipeline-software "
                "(single-threaded)\n",
                gx_vs_sw);
    std::printf("  genax host phases: seeding-sim %.3f s, extension "
                "%.3f s (cpu), bookkeeping %.3f s, total %.3f s\n",
                genax_profile.seedingSimSeconds,
                genax_profile.extensionSeconds,
                genax_profile.bookkeepingSeconds,
                genax_profile.totalSeconds);

    // End-to-end serving sweep over real sockets (the in-process
    // genax_serve stack). Runs after the pipeline legs so the gate
    // can compare against the just-measured single-client baseline.
    const ServeBench serve = benchServe(fasta, fastq, opt);
    if (!serve.available)
        std::printf("  serve sweep unavailable: %s\n",
                    serve.note.c_str());

    // The MT-vs-ST gate engages only when the host can really run
    // wide: with fewer than 4 effective workers a 2x software
    // speedup is not attainable and the gate reports itself skipped.
    // The requested/effective divergence itself is always published
    // in the report — numbers measured at a clamped width must never
    // masquerade as full-width numbers.
    const bool width_divergence = effective_mt != opt.mtThreads;
    constexpr double kSwSpeedupFloor = 2.0;
    const bool gate_applies = opt.check && effective_mt >= 4;
    const bool gate_passed =
        !gate_applies ||
        (sw_speedup >= kSwSpeedupFloor && gx_speedup >= 1.0);

    // Parity gate below the 2x gate's reach: at one effective worker
    // the MT legs resolve to the very configuration the ST legs
    // measured (and reuse their numbers), so the MT/ST ratios must be
    // exactly 1.0 — anything less means the harness re-timed the same
    // path and published the noise as a slowdown.
    const bool parity_applies = opt.check && effective_mt == 1;
    const bool parity_passed =
        !parity_applies || (sw_speedup >= 1.0 && gx_speedup >= 1.0);

    // Absolute genax-system floor: at least 2x its PR 7 baseline
    // (525.7 reads/s single-threaded on the pinned workload).
    // Absolute wall-clock floors are host-sensitive, so the margin is
    // deliberately wide — the event-driven model currently clears the
    // floor severalfold — and the gate only engages on the exact
    // pinned workload (a --genome/--reads override measures something
    // else and must not trip it).
    constexpr double kGenaxBaselineReadsPerSec = 525.717;
    constexpr double kGenaxStFloor = 2.0 * kGenaxBaselineReadsPerSec;
    const bool pinned_workload =
        opt.genomeLen == 120000 && opt.numReads == 600;
    const double genax_st = throughput("genax-system", 1);
    const bool genax_gate_applies = opt.check && pinned_workload;
    const bool genax_gate_passed =
        !genax_gate_applies || genax_st >= kGenaxStFloor;

    // Model-vs-software floor: single-threaded, the cycle-accurate
    // GenAx model must run at no worse than half the software
    // baseline's throughput on the pinned workload. This is the
    // headline "close the gap" metric of the event-batched extension
    // work — letting it erode back below 0.5x would silently undo
    // that optimization. Same skip rule as the absolute floor: only
    // the pinned workload is comparable.
    constexpr double kGxVsSwFloor = 0.5;
    const bool gx_vs_sw_applies = opt.check && pinned_workload;
    const bool gx_vs_sw_passed =
        !gx_vs_sw_applies || gx_vs_sw >= kGxVsSwFloor;

    // Serving gate: 64 batched clients must beat one offline
    // streaming client. The offline leg pays index construction every
    // run; the daemon paid it once before the sweep started — if
    // batching ever stops clearing this bar, the load-once design
    // has regressed into per-request overhead. Skips only when the
    // host could not set up a socket at all (the reason is in the
    // report), never silently.
    const double serve_floor = throughput("pipeline-software", 1);
    double serve64 = 0;
    u64 serve64_errors = 0;
    for (const auto &p : serve.points) {
        if (p.clients == 64) {
            serve64 = p.readsPerSec;
            serve64_errors = p.errors;
        }
    }
    const bool serve_applies = opt.check && serve.available;
    const bool serve_passed =
        !serve_applies ||
        (serve64 >= serve_floor && serve64_errors == 0);

    std::ofstream out(opt.out);
    if (!out) {
        std::fprintf(stderr, "bench_report: cannot open %s\n",
                     opt.out.c_str());
        return 3;
    }
    out << "{\n"
        << "  \"schema\": \"genax-bench-pipeline-v2\",\n"
        << "  \"workload\": {\"genome_len\": " << opt.genomeLen
        << ", \"reads\": " << fastq.size() << ", \"read_len\": "
        << read_len << ", \"seed\": " << kWorkloadSeed << "},\n"
        << "  \"host\": {\"hardware_threads\": " << hw
        << ", \"mt_threads_requested\": " << opt.mtThreads
        << ", \"mt_threads_effective\": " << effective_mt
        << ", \"dispatch_tier\": \"" << tier << "\"},\n"
        << "  \"memory\": [\n";
    for (size_t i = 0; i < memory.size(); ++i) {
        const auto &m = memory[i];
        out << "    {\"mode\": \"" << m.mode
            << "\", \"batch_reads\": " << m.batchReads
            << ", \"peak_rss_bytes\": " << m.peakRssBytes << "}"
            << (i + 1 < memory.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"kernels\": [\n";
    for (size_t i = 0; i < kernels.size(); ++i) {
        const auto &k = kernels[i];
        out << "    {\"name\": \"" << k.name
            << "\", \"scalar_ns_per_cell\": " << k.scalarNsPerCell
            << ", \"simd_ns_per_cell\": " << k.simdNsPerCell
            << ", \"speedup\": " << k.speedup << "}"
            << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        out << "    {\"path\": \"" << r.path
            << "\", \"threads_requested\": " << r.threadsRequested
            << ", \"threads_effective\": " << r.threadsEffective
            << ", \"seconds\": " << r.seconds
            << ", \"reads_per_sec\": " << r.readsPerSec << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"speedups\": {\"pipeline_software_mt_vs_st\": "
        << sw_speedup << ", \"genax_system_mt_vs_st\": " << gx_speedup
        << ", \"genax_system_vs_software\": " << gx_vs_sw
        << ", \"mt_threads_requested\": " << opt.mtThreads
        << ", \"mt_threads_effective\": " << effective_mt << "},\n"
        << "  \"genax_host_profile\": {\"seeding_sim_seconds\": "
        << genax_profile.seedingSimSeconds
        << ", \"extension_cpu_seconds\": "
        << genax_profile.extensionSeconds
        << ", \"bookkeeping_seconds\": "
        << genax_profile.bookkeepingSeconds
        << ", \"total_seconds\": " << genax_profile.totalSeconds
        << "},\n"
        << "  \"serve\": {\"available\": "
        << (serve.available ? "true" : "false") << ", \"note\": \""
        << serve.note << "\", \"endpoint\": \"" << serve.endpointKind
        << "\", \"engine\": \"software\", \"threads\": "
        << serve.threads << ", \"batch_reads\": " << serve.batchReads
        << ", \"reads_per_request\": 16,\n"
        << "    \"points\": [\n";
    for (size_t i = 0; i < serve.points.size(); ++i) {
        const auto &p = serve.points[i];
        out << "      {\"clients\": " << p.clients
            << ", \"requests_per_client\": " << p.requestsPerClient
            << ", \"reads\": " << p.reads
            << ", \"errors\": " << p.errors
            << ", \"seconds\": " << p.seconds
            << ", \"reads_per_sec\": " << p.readsPerSec
            << ", \"p50_ms\": " << p.p50Ms
            << ", \"p99_ms\": " << p.p99Ms
            << ", \"max_ms\": " << p.maxMs << "}"
            << (i + 1 < serve.points.size() ? "," : "") << "\n";
    }
    out << "    ]},\n"
        << "  \"check\": {\"enabled\": " << (opt.check ? "true" : "false")
        << ", \"applied\": " << (gate_applies ? "true" : "false")
        << ", \"passed\": " << (gate_passed ? "true" : "false")
        << ", \"sw_speedup_floor\": " << kSwSpeedupFloor
        << ", \"parity_applied\": "
        << (parity_applies ? "true" : "false")
        << ", \"parity_passed\": "
        << (parity_passed ? "true" : "false")
        << ", \"genax_applied\": "
        << (genax_gate_applies ? "true" : "false")
        << ", \"genax_passed\": "
        << (genax_gate_passed ? "true" : "false")
        << ", \"genax_st_floor\": " << kGenaxStFloor
        << ", \"gx_vs_sw_floor\": " << kGxVsSwFloor
        << ", \"gx_vs_sw_applied\": "
        << (gx_vs_sw_applies ? "true" : "false")
        << ", \"gx_vs_sw_passed\": "
        << (gx_vs_sw_passed ? "true" : "false")
        << ", \"serve_applied\": "
        << (serve_applies ? "true" : "false")
        << ", \"serve_passed\": "
        << (serve_passed ? "true" : "false")
        << ", \"serve_floor_reads_per_sec\": " << serve_floor
        << ", \"width_divergence\": "
        << (width_divergence ? "true" : "false") << "}\n"
        << "}\n";
    out.close();
    std::printf("wrote %s\n", opt.out.c_str());

    if (opt.check && !gate_applies)
        std::printf("check: skipped (%u effective threads, need >= 4 "
                    "for the %.1fx software gate)\n",
                    effective_mt, kSwSpeedupFloor);
    if (opt.check && width_divergence)
        std::printf("check: note: requested %u MT threads, hardware "
                    "clamps to %u\n",
                    opt.mtThreads, effective_mt);
    if (opt.check && !pinned_workload)
        std::printf("check: genax floor skipped (non-pinned "
                    "workload)\n");
    if (!gate_passed) {
        std::fprintf(stderr,
                     "check FAILED at %u effective threads: software "
                     "%.2fx (floor %.1fx), genax %.2fx (floor 1.0x)\n",
                     effective_mt, sw_speedup, kSwSpeedupFloor,
                     gx_speedup);
        return 1;
    }
    if (!genax_gate_passed) {
        std::fprintf(stderr,
                     "check FAILED: genax-system %.1f reads/s "
                     "single-threaded, floor %.1f (2x the PR 7 "
                     "baseline %.1f)\n",
                     genax_st, kGenaxStFloor,
                     kGenaxBaselineReadsPerSec);
        return 1;
    }
    if (!parity_passed) {
        std::fprintf(stderr,
                     "check FAILED: MT legs at 1 effective worker "
                     "must match ST exactly — software %.3fx, "
                     "genax %.3fx (floor 1.0x)\n",
                     sw_speedup, gx_speedup);
        return 1;
    }
    if (!gx_vs_sw_passed) {
        std::fprintf(stderr,
                     "check FAILED: genax-system runs at %.2fx of "
                     "pipeline-software single-threaded, floor %.2fx\n",
                     gx_vs_sw, kGxVsSwFloor);
        return 1;
    }
    if (opt.check && !serve.available)
        std::printf("check: serve gate skipped (sockets "
                    "unavailable: %s)\n",
                    serve.note.c_str());
    if (!serve_passed) {
        std::fprintf(stderr,
                     "check FAILED: 64-client serve throughput %.1f "
                     "reads/s (%llu errors), floor %.1f (single-"
                     "client pipeline-software streaming)\n",
                     serve64,
                     static_cast<unsigned long long>(serve64_errors),
                     serve_floor);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--genome") {
            opt.genomeLen = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--reads") {
            opt.numReads = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--mt-threads") {
            opt.mtThreads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--repeat") {
            opt.repeat = std::atoi(next());
        } else if (arg == "--kernel") {
            opt.kernel = next();
        } else if (arg == "-h" || arg == "--help") {
            std::printf(
                "usage: bench_report [--out FILE] [--check]\n"
                "                    [--genome N] [--reads N]\n"
                "                    [--mt-threads N] [--repeat N]\n"
                "                    [--kernel auto|scalar|sse41|avx2]\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (opt.genomeLen < 1000 || opt.mtThreads == 0 || opt.repeat < 1) {
        std::fprintf(stderr, "bench_report: implausible options\n");
        return 2;
    }
    if (!opt.kernel.empty()) {
        if (const auto st = simd::setKernelTierByName(opt.kernel);
            !st.ok()) {
            std::fprintf(stderr, "bench_report: --kernel %s: %s\n",
                         opt.kernel.c_str(), st.str().c_str());
            return 2;
        }
    }
    return run(opt);
}
