#!/usr/bin/env bash
# Full corruption-chaos sweep over the on-disk store layer, driving
# the store_chaos harness plus the genax_index/genax_align CLI
# surface. CI runs this under ASan+UBSan: every rejected mutation is
# also a memory-safety probe. See DESIGN.md, "On-disk stores &
# durability".
#
# Usage: tools/store_chaos.sh path/to/store_chaos \
#            [path/to/genax_index [path/to/genax_align]]
#
# The CLI legs are skipped when the extra binaries are not given.
set -u

chaos="${1:?usage: store_chaos.sh path/to/store_chaos [genax_index [genax_align]]}"
index_bin="${2:-}"
align_bin="${3:-}"
[[ -x "$chaos" ]] || { echo "store-chaos: $chaos not executable" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
err() {
    echo "store-chaos: $*" >&2
    fail=1
}

# ------------------------------------------------------------------
# 1. Harness sweeps: truncation at every section boundary, 256
#    deterministic bit flips, and the kill-during-save crash sweep.
# ------------------------------------------------------------------
"$chaos" build "$tmp/snap.gxs" || err "build failed"
"$chaos" truncate "$tmp/snap.gxs" || err "truncation sweep failed"
"$chaos" bitflip "$tmp/snap.gxs" 256 7 || err "bitflip sweep failed"
"$chaos" killsave "$tmp/kill" || err "killsave sweep failed"

# A second seed exercises different flip offsets without giving up
# determinism.
"$chaos" bitflip "$tmp/snap.gxs" 64 1234 || err "bitflip(seed 1234) failed"

# Exit-code contract: usage errors are 2, a missing input store is 3.
"$chaos" frobnicate >/dev/null 2>&1
[[ $? -eq 2 ]] || err "unknown subcommand: want exit 2"
"$chaos" truncate "$tmp/absent.gxs" >/dev/null 2>&1
[[ $? -eq 3 ]] || err "missing input store: want exit 3"

# ------------------------------------------------------------------
# 2. CLI leg: genax_index --verify must reject what the harness
#    corrupts, with the documented exit codes.
# ------------------------------------------------------------------
if [[ -n "$index_bin" ]]; then
    [[ -x "$index_bin" ]] || err "$index_bin not executable"
    "$index_bin" --verify "$tmp/snap.gxs" >/dev/null 2>&1 ||
        err "verify of a pristine snapshot failed"
    # Flip one payload byte far past the header.
    head -c 2000 "$tmp/snap.gxs" >"$tmp/corrupt.gxs"
    printf '\377' >>"$tmp/corrupt.gxs"
    tail -c +2002 "$tmp/snap.gxs" >>"$tmp/corrupt.gxs"
    "$index_bin" --verify "$tmp/corrupt.gxs" >/dev/null 2>"$tmp/verify.log"
    [[ $? -eq 3 ]] || err "verify of a corrupt snapshot: want exit 3"
    grep -qi 'checksum\|store' "$tmp/verify.log" ||
        err "verify diagnostic does not mention the store layer"
fi

if ((fail)); then
    echo "store-chaos: FAILED" >&2
    exit 1
fi
echo "store-chaos: OK"
