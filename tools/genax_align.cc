/**
 * @file
 * genax_align — command-line read aligner.
 *
 *   genax_align --ref ref.fa --reads reads.fq --out out.sam
 *               [--engine genax|sw] [--k 12] [--band 40]
 *               [--segments 8] [--threads 1]
 *
 * Aligns FASTQ reads against a FASTA reference and writes SAM, using
 * either the GenAx accelerator model (default; also prints the
 * hardware performance report) or the BWA-MEM-like software
 * baseline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "genax/pipeline.hh"

using namespace genax;

namespace {

void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s --ref ref.fa --reads reads.fq --out out.sam\n"
        "          [--reads2 mates.fq] [--engine genax|sw] [--k K]\n"
        "          [--band K] [--segments N] [--threads N]\n"
        "--reads2 enables paired-end mode (software engine)\n",
        prog);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ref, reads, reads2, out;
    PipelineOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--ref") {
            ref = next();
        } else if (arg == "--reads") {
            reads = next();
        } else if (arg == "--reads2") {
            reads2 = next();
        } else if (arg == "--out") {
            out = next();
        } else if (arg == "--engine") {
            const std::string e = next();
            if (e == "genax") {
                opts.engine = PipelineOptions::Engine::GenAx;
            } else if (e == "sw") {
                opts.engine = PipelineOptions::Engine::Software;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--k") {
            opts.k = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--band") {
            opts.band = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--segments") {
            opts.segments = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
        }
    }
    if (ref.empty() || reads.empty() || out.empty())
        usage(argv[0]);

    const PipelineResult res =
        reads2.empty() ? alignFiles(ref, reads, out, opts)
                       : alignPairFiles(ref, reads, reads2, out, opts);
    std::fprintf(stderr,
                 "aligned %llu reads (%llu mapped) in %.3f s -> %s\n",
                 static_cast<unsigned long long>(res.reads),
                 static_cast<unsigned long long>(res.mapped),
                 res.seconds, out.c_str());
    if (opts.engine == PipelineOptions::Engine::GenAx) {
        std::fprintf(stderr,
                     "GenAx model: %llu exact-path reads, %llu "
                     "extension jobs, modelled %.1f KReads/s\n",
                     static_cast<unsigned long long>(
                         res.perf.exactReads),
                     static_cast<unsigned long long>(
                         res.perf.extensionJobs),
                     res.perf.readsPerSecond() / 1e3);
    }
    return 0;
}
