/**
 * @file
 * genax_align — command-line read aligner.
 *
 *   genax_align --ref ref.fa --reads reads.fq --out out.sam
 *               [--reads2 mates.fq] [--engine genax|sw] [--k 12]
 *               [--band 40] [--segments 8] [--threads 1]
 *               [--batch-reads N] [--index snapshot.gxs]
 *               [--kernel auto|scalar|sse41|avx2]
 *               [--max-malformed N] [--inject SPEC]
 *
 * Aligns FASTQ reads against a FASTA reference and writes SAM, using
 * either the GenAx accelerator model (default; also prints the
 * hardware performance report) or the BWA-MEM-like software
 * baseline.
 *
 * Exit codes: 0 on full success, 1 when the run completed but some
 * reads were skipped, degraded or failed (see the ledger on stderr),
 * 2 on a usage error, 3 on an unrecoverable error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "align/simd/dispatch.hh"
#include "common/faultinject.hh"
#include "genax/pipeline.hh"

using namespace genax;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitPartial = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

void
printHelp(const char *prog, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s --ref ref.fa --reads reads.fq --out out.sam\n"
        "          [options]\n"
        "\n"
        "Align FASTQ reads against a FASTA reference and write SAM.\n"
        "\n"
        "options:\n"
        "  --ref FILE         reference FASTA (required)\n"
        "  --reads FILE       reads FASTQ (required)\n"
        "  --reads2 FILE      mate FASTQ; enables paired-end mode\n"
        "                     (software engine)\n"
        "  --out FILE         output SAM (required)\n"
        "  --engine genax|sw  accelerator model or software baseline\n"
        "                     (default genax)\n"
        "  --k K              seeding k-mer length (default 12)\n"
        "  --band K           edit bound / extension band (default 40);\n"
        "                     beyond the SillaX maximum the run degrades\n"
        "                     to the software engine\n"
        "  --segments N       GenAx genome segments (default 8)\n"
        "  --threads N        worker threads for either engine\n"
        "                     (default 1; 0 = all hardware threads);\n"
        "                     output is identical at any width\n"
        "  --batch-reads N    stream reads through the engine in\n"
        "                     batches of N, overlapping parse, align\n"
        "                     and SAM emission with O(batch) memory\n"
        "                     (default 0 = load all reads first);\n"
        "                     output is identical at any batch size;\n"
        "                     single-end mode only\n"
        "  --index FILE       prebuilt index snapshot from\n"
        "                     'genax_index --format flat'; mmapped\n"
        "                     zero-copy, skipping the per-run index\n"
        "                     build. The snapshot's k/segments/overlap\n"
        "                     override the flags above. A corrupt\n"
        "                     snapshot degrades to rebuild-from-FASTA\n"
        "                     (exit 1); one built from a different\n"
        "                     reference is a hard error (exit 3)\n"
        "  --kernel TIER      force the alignment-kernel dispatch\n"
        "                     tier: auto (default), scalar, sse41 or\n"
        "                     avx2; all tiers produce identical\n"
        "                     output (GENAX_FORCE_SCALAR=1 in the\n"
        "                     environment pins scalar too)\n"
        "  --max-malformed N  malformed input records tolerated per\n"
        "                     file before the run fails (default 1000)\n"
        "  --inject SPEC      arm fault-injection sites, e.g.\n"
        "                     'io.fastq.record:p=0.01,seed=7;"
        "sillax.lane.issue:n=3'\n"
        "                     (GENAX_FAULT_INJECT in the environment\n"
        "                     works too)\n"
        "  -h, --help         show this help and exit\n"
        "\n"
        "exit codes: 0 success; 1 completed with skipped, degraded or\n"
        "failed reads; 2 usage error; 3 unrecoverable error\n",
        prog);
}

[[noreturn]] void
usageError(const char *prog, const char *msg)
{
    std::fprintf(stderr, "%s: %s\n", prog, msg);
    printHelp(prog, stderr);
    std::exit(kExitUsage);
}

void
printParseTrouble(const char *label, const ReaderStats &stats)
{
    if (stats.malformed == 0)
        return;
    std::fprintf(stderr,
                 "%s: skipped %llu malformed record%s\n", label,
                 static_cast<unsigned long long>(stats.malformed),
                 stats.malformed == 1 ? "" : "s");
    for (const auto &e : stats.errors)
        std::fprintf(stderr, "  line %llu: %s\n",
                     static_cast<unsigned long long>(e.line),
                     e.message.c_str());
    if (stats.errors.size() < stats.malformed)
        std::fprintf(stderr, "  ... and %llu more\n",
                     static_cast<unsigned long long>(
                         stats.malformed - stats.errors.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ref, reads, reads2, out, inject;
    PipelineOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(argv[0],
                           ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--ref") {
            ref = next();
        } else if (arg == "--reads") {
            reads = next();
        } else if (arg == "--reads2") {
            reads2 = next();
        } else if (arg == "--out") {
            out = next();
        } else if (arg == "--engine") {
            const std::string e = next();
            if (e == "genax") {
                opts.engine = PipelineOptions::Engine::GenAx;
            } else if (e == "sw") {
                opts.engine = PipelineOptions::Engine::Software;
            } else {
                usageError(argv[0], "--engine must be genax or sw");
            }
        } else if (arg == "--k") {
            opts.k = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--band") {
            opts.band = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--segments") {
            opts.segments = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--batch-reads") {
            opts.batchReads = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--index") {
            opts.indexSnapshot = next();
        } else if (arg == "--kernel") {
            const std::string tier = next();
            if (const Status st = simd::setKernelTierByName(tier);
                !st.ok())
                usageError(argv[0],
                           ("--kernel " + tier + ": " + st.str())
                               .c_str());
        } else if (arg == "--max-malformed") {
            opts.maxMalformed = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--inject") {
            inject = next();
        } else if (arg == "--help" || arg == "-h") {
            printHelp(argv[0], stdout);
            return kExitOk;
        } else {
            usageError(argv[0],
                       ("unknown option: " + arg).c_str());
        }
    }
    if (ref.empty() || reads.empty() || out.empty())
        usageError(argv[0], "--ref, --reads and --out are required");
    if (opts.batchReads > 0 && !reads2.empty())
        usageError(argv[0],
                   "--batch-reads is single-end only (paired mode "
                   "loads both mate files whole)");
    if (!opts.indexSnapshot.empty() && !reads2.empty())
        usageError(argv[0],
                   "--index is single-end only (paired mode runs "
                   "the software engine, which builds no segment "
                   "indexes)");

    if (const Status st = FaultInjector::instance().configureFromEnv();
        !st.ok()) {
        std::fprintf(stderr, "GENAX_FAULT_INJECT: %s\n",
                     st.str().c_str());
        return kExitUsage;
    }
    if (!inject.empty()) {
        if (const Status st =
                FaultInjector::instance().configure(inject);
            !st.ok()) {
            std::fprintf(stderr, "--inject: %s\n", st.str().c_str());
            return kExitUsage;
        }
    }

    const auto result =
        reads2.empty() ? alignFiles(ref, reads, out, opts)
                       : alignPairFiles(ref, reads, reads2, out, opts);
    if (!result.ok()) {
        std::fprintf(stderr, "genax_align: %s\n",
                     result.status().str().c_str());
        return kExitError;
    }
    const PipelineResult &res = *result;

    printParseTrouble("reference", res.refInput);
    printParseTrouble("reads", res.readInput);
    if (res.softwareFallback)
        std::fprintf(stderr,
                     "note: run degraded to the software engine\n");
    if (!res.indexNote.empty())
        std::fprintf(stderr, "note: %s\n", res.indexNote.c_str());
    std::fprintf(
        stderr,
        "aligned %llu reads in %.3f s -> %s\n"
        "ledger: %llu mapped, %llu unmapped, %llu skipped-malformed, "
        "%llu degraded, %llu failed\n",
        static_cast<unsigned long long>(res.reads), res.seconds,
        out.c_str(), static_cast<unsigned long long>(res.mapped),
        static_cast<unsigned long long>(res.unmapped),
        static_cast<unsigned long long>(res.skippedMalformed),
        static_cast<unsigned long long>(res.degraded),
        static_cast<unsigned long long>(res.failed));
    if (opts.engine == PipelineOptions::Engine::GenAx &&
        !res.softwareFallback && reads2.empty()) {
        std::fprintf(stderr,
                     "GenAx model: %llu exact-path reads, %llu "
                     "extension jobs, modelled %.1f KReads/s\n",
                     static_cast<unsigned long long>(
                         res.perf.exactReads),
                     static_cast<unsigned long long>(
                         res.perf.extensionJobs),
                     res.perf.readsPerSecond() / 1e3);
        if (res.perf.laneFaults || res.perf.dramFaults)
            std::fprintf(
                stderr,
                "faults absorbed: %llu lane issues, %llu DRAM "
                "streams\n",
                static_cast<unsigned long long>(res.perf.laneFaults),
                static_cast<unsigned long long>(res.perf.dramFaults));
    }

    const bool partial = res.skippedMalformed > 0 || res.degraded > 0 ||
                         res.failed > 0 || res.softwareFallback ||
                         res.indexFallback;
    return partial ? kExitPartial : kExitOk;
}
