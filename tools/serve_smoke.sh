#!/usr/bin/env bash
# Serving smoke test: a real genax_serve daemon on a Unix socket,
# exercised end to end from the outside — byte-identity of the served
# SAM against an offline run, 8 concurrent load-generator clients,
# the admission-control shed path, the stats round trip, and a clean
# SIGTERM shutdown with the serving ledger on stderr. CI runs this
# under ASan+UBSan so every socket/batcher path is also a
# memory-safety probe.
#
# Usage: tools/serve_smoke.sh genax_serve genax_client genax_align
#        [genax_index]
# With genax_index the daemon serves from a prebuilt snapshot (the
# load-once zero-copy path); without it, from the FASTA rebuild path.
set -u

serve_bin="${1:?usage: serve_smoke.sh genax_serve genax_client genax_align [genax_index]}"
client_bin="${2:?usage: serve_smoke.sh genax_serve genax_client genax_align [genax_index]}"
align_bin="${3:?usage: serve_smoke.sh genax_serve genax_client genax_align [genax_index]}"
index_bin="${4:-}"
for b in "$serve_bin" "$client_bin" "$align_bin"; do
    [[ -x "$b" ]] || { echo "serve-smoke: $b not executable" >&2; exit 1; }
done

tmp="$(mktemp -d)"
trap 'kill -9 "${spid:-}" 2>/dev/null; rm -rf "$tmp"' EXIT

fail=0
err() {
    echo "serve-smoke: $*" >&2
    fail=1
}

# Deterministic corpus (bash LCG, fixed seed): one contig, reads cut
# straight from it.
bases=(A C G T)
state=20240901
seq=""
for ((i = 0; i < 1500; i++)); do
    state=$(((state * 1103515245 + 12345) % 2147483648))
    seq+="${bases[$(((state >> 16) % 4))]}"
done
{
    echo ">chr1 serve smoke contig"
    fold -w 70 <<<"$seq"
} >"$tmp/ref.fa"
qual=$(printf 'I%.0s' {1..90})
for ((r = 0; r < 48; r++)); do
    printf '@read%d\n%s\n+\n%s\n' "$r" "${seq:$((r * 28)):90}" "$qual"
done >"$tmp/reads.fq"

index_args=()
if [[ -n "$index_bin" ]]; then
    "$index_bin" --ref "$tmp/ref.fa" --out "$tmp/snap.gxs" \
        --format flat --segments 4 --k 11 \
        >/dev/null 2>"$tmp/index.log" ||
        err "snapshot build failed"
    index_args=(--index "$tmp/snap.gxs")
fi

# Offline reference run: the byte-identity target.
"$align_bin" --ref "$tmp/ref.fa" --reads "$tmp/reads.fq" \
    --out "$tmp/offline.sam" "${index_args[@]}" \
    >/dev/null 2>"$tmp/offline.log"
status=$?
((status == 0)) || err "offline baseline: exit $status, want 0"

sock="$tmp/serve.sock"
"$serve_bin" --ref "$tmp/ref.fa" --listen "unix:$sock" \
    "${index_args[@]}" >"$tmp/serve.out" 2>"$tmp/serve.log" &
spid=$!

# 1. Byte-identity: one client streams the corpus in odd-sized
#    requests; the written SAM must equal the offline run exactly.
timeout 60 "$client_bin" --connect "unix:$sock" \
    --reads "$tmp/reads.fq" --out "$tmp/served.sam" \
    --reads-per-request 7 2>"$tmp/client1.log"
status=$?
((status == 0)) || err "single client: exit $status, want 0"
cmp -s "$tmp/offline.sam" "$tmp/served.sam" ||
    err "served SAM differs from the offline run"

# 2. Load generator: 8 concurrent clients, zero errors expected, and
#    a latency summary line on stdout.
timeout 120 "$client_bin" --connect "unix:$sock" \
    --reads "$tmp/reads.fq" --clients 8 --repeat 6 \
    >"$tmp/load.out" 2>"$tmp/load.log"
status=$?
((status == 0)) || err "load generator: exit $status, want 0"
grep -q 'clients=8 .*errors=0' "$tmp/load.out" ||
    err "load generator did not report 8 error-free clients"
grep -q 'p99_ms=' "$tmp/load.out" ||
    err "load generator did not report tail latency"

# 3. Stats round trip: the daemon's ledger travels the protocol.
timeout 60 "$client_bin" --connect "unix:$sock" \
    --reads "$tmp/reads.fq" --out "$tmp/stats.sam" --stats \
    2>"$tmp/stats.log"
status=$?
((status == 0)) || err "stats client: exit $status, want 0"
grep -q 'batches:' "$tmp/stats.log" ||
    err "stats reply carries no batch ledger"

# 4. Clean shutdown: SIGTERM exits 0 with the serving ledger (tenant
#    lines and the three latency histograms) on stderr.
kill -TERM "$spid"
wait "$spid"
status=$?
((status == 0)) || err "daemon shutdown: exit $status, want 0"
spid=""
grep -q 'served .* connections' "$tmp/serve.log" ||
    err "no serving ledger on the daemon's stderr"
grep -q 'queue-wait:' "$tmp/serve.log" ||
    err "no queue-wait histogram in the ledger"

# 5. Admission control, shed mode: a tiny queue with
#    --reject-when-full and a stalled batch deadline must shed at
#    least one request with a clean error while the daemon survives.
"$serve_bin" --ref "$tmp/ref.fa" --listen "unix:$sock" \
    "${index_args[@]}" --queue-reads 8 --reject-when-full \
    --batch-reads 100000 --batch-wait-ms 2000 \
    >"$tmp/shed.out" 2>"$tmp/shed.log" &
spid=$!
timeout 120 "$client_bin" --connect "unix:$sock" \
    --reads "$tmp/reads.fq" --clients 4 --repeat 2 \
    --reads-per-request 16 >"$tmp/shed_load.out" 2>"$tmp/shed_load.log"
shed_status=$?
kill -TERM "$spid"
wait "$spid"
status=$?
((status == 0)) || err "shed-mode daemon: exit $status, want 0"
spid=""
if ((shed_status == 0)); then
    err "shed mode: expected at least one rejected request"
fi
grep -q 'resource-exhausted\|serve queue full' "$tmp/shed_load.log" ||
    err "shed mode: no ResourceExhausted diagnostic on the client"

if ((fail)); then
    echo "serve-smoke: FAILED" >&2
    exit 1
fi
echo "serve-smoke: OK"
