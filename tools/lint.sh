#!/usr/bin/env bash
# Repository lint: header guards, include hygiene and whitespace.
# Pure bash + grep so it runs anywhere; clang-format and clang-tidy
# cover style, and tools/genax_lint (a real C++ checker driven by
# compile_commands.json) owns the token-level determinism rules that
# used to live here as greps: RNG hygiene is its raw-rng rule and the
# GENAX_FATAL policy its raw-fatal rule.
#
# Usage: tools/lint.sh [--fix-whitespace]
set -u

cd "$(dirname "$0")/.." || exit 1

fail=0
fix_ws=0
[[ "${1:-}" == "--fix-whitespace" ]] && fix_ws=1

err() {
    echo "lint: $*" >&2
    fail=1
}

# Every tracked C++ source. Prune build trees (any build*/ that CMake
# drops inside a source dir), symlinked directories (so a link into a
# build or install tree cannot smuggle generated files in), and the
# deliberately-bad genax_lint fixtures.
mapfile -t sources < <(
    find src tests bench tools examples \
        \( -name 'build*' -type d -o -type l -o \
           -path 'tests/test_lint_fixtures' \) -prune -o \
        \( -name '*.cc' -o -name '*.hh' \) -type f -print \
        2>/dev/null | sort)

# An empty list means the script is running from the wrong directory
# or the tree is damaged; silently "passing" over zero files would
# mask that, so make it a hard failure.
if ((${#sources[@]} == 0)); then
    echo "lint: no sources found under $(pwd) — aborting" >&2
    exit 1
fi

# ---------------------------------------------------------------
# 1. Header guards: GENAX_<PATH>_HH derived from the file path
#    (relative to src/ for the library, to the repo root elsewhere).
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    [[ "$f" == *.hh ]] || continue
    rel="${f#src/}"
    guard="GENAX_$(echo "$rel" | tr 'a-z/.' 'A-Z__' | tr -cd 'A-Z0-9_')"
    if ! grep -q "^#ifndef ${guard}\$" "$f"; then
        err "$f: missing or wrong header guard (want ${guard})"
        continue
    fi
    grep -q "^#define ${guard}\$" "$f" ||
        err "$f: #define ${guard} missing after #ifndef"
    grep -q "^#endif // ${guard}\$" "$f" ||
        err "$f: closing '#endif // ${guard}' comment missing"
done

# ---------------------------------------------------------------
# 2. (moved) RNG hygiene is now genax_lint's raw-rng rule, which
#    strips comments and strings before matching and supports
#    reasoned suppressions. Run: build/tools/genax_lint -p
#    build/compile_commands.json
# ---------------------------------------------------------------

# ---------------------------------------------------------------
# 3. Include hygiene: project includes are root-relative (no ../),
#    use quotes, and resolve to a real file; every .cc includes its
#    own header first so headers stay self-contained.
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    if grep -n '#include "\.\./' "$f"; then
        err "$f: relative ../ include; use a root-relative path"
    fi
    while IFS= read -r inc; do
        [[ -f "src/$inc" || -f "$inc" ||
           -f "$(dirname "$f")/$inc" ]] ||
            err "$f: include \"$inc\" does not resolve"
    done < <(sed -n 's/^#include "\([^"]*\)".*/\1/p' "$f")
done

for f in "${sources[@]}"; do
    [[ "$f" == src/*.cc ]] || continue
    own="${f#src/}"
    own="${own%.cc}.hh"
    [[ -f "src/$own" ]] || continue # no matching header (e.g. mains)
    first=$(sed -n 's/^#include "\([^"]*\)".*/\1/p' "$f" | head -n 1)
    [[ "$first" == "$own" ]] ||
        err "$f: own header \"$own\" must be the first include"
done

# ---------------------------------------------------------------
# 4. (moved) The GENAX_FATAL policy is now genax_lint's raw-fatal
#    rule; see rule 2's note above for how to run it.
# ---------------------------------------------------------------

# ---------------------------------------------------------------
# 5. Whitespace: no tabs, no trailing whitespace in C++ sources.
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    if grep -qP '\t' "$f"; then
        if ((fix_ws)); then
            sed -i 's/\t/    /g' "$f"
            echo "lint: $f: expanded tabs (fixed)"
        else
            err "$f: tab characters (run with --fix-whitespace)"
        fi
    fi
    if grep -qP '[ \t]+$' "$f"; then
        if ((fix_ws)); then
            sed -i 's/[[:space:]]*$//' "$f"
            echo "lint: $f: stripped trailing whitespace (fixed)"
        else
            err "$f: trailing whitespace (run with --fix-whitespace)"
        fi
    fi
done

if ((fail)); then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: OK (${#sources[@]} files)"
