#!/usr/bin/env bash
# Repository lint: header guards, RNG hygiene, include hygiene and
# whitespace. Pure bash + grep so it runs anywhere; clang-format and
# clang-tidy cover what this script cannot.
#
# Usage: tools/lint.sh [--fix-whitespace]
set -u

cd "$(dirname "$0")/.." || exit 1

fail=0
fix_ws=0
[[ "${1:-}" == "--fix-whitespace" ]] && fix_ws=1

err() {
    echo "lint: $*" >&2
    fail=1
}

# Every tracked C++ source outside build trees.
mapfile -t sources < <(
    find src tests bench tools examples \
        \( -name '*.cc' -o -name '*.hh' \) -type f 2>/dev/null | sort)

# ---------------------------------------------------------------
# 1. Header guards: GENAX_<PATH>_HH derived from the file path
#    (relative to src/ for the library, to the repo root elsewhere).
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    [[ "$f" == *.hh ]] || continue
    rel="${f#src/}"
    guard="GENAX_$(echo "$rel" | tr 'a-z/.' 'A-Z__' | tr -cd 'A-Z0-9_')"
    if ! grep -q "^#ifndef ${guard}\$" "$f"; then
        err "$f: missing or wrong header guard (want ${guard})"
        continue
    fi
    grep -q "^#define ${guard}\$" "$f" ||
        err "$f: #define ${guard} missing after #ifndef"
    grep -q "^#endif // ${guard}\$" "$f" ||
        err "$f: closing '#endif // ${guard}' comment missing"
done

# ---------------------------------------------------------------
# 2. RNG hygiene: all randomness flows through src/common/rng.hh so
#    every simulation is reproducible from a seed. Nondeterministic
#    or C-library generators are banned everywhere else.
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    [[ "$f" == "src/common/rng.hh" ]] && continue
    if grep -nE '\b(std::rand\b|\brand\(\)|srand\(|std::mt19937|std::minstd_rand|std::random_device|random_shuffle)' "$f"; then
        err "$f: raw RNG use; route randomness through common/rng.hh"
    fi
done

# ---------------------------------------------------------------
# 3. Include hygiene: project includes are root-relative (no ../),
#    use quotes, and resolve to a real file; every .cc includes its
#    own header first so headers stay self-contained.
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    if grep -n '#include "\.\./' "$f"; then
        err "$f: relative ../ include; use a root-relative path"
    fi
    while IFS= read -r inc; do
        [[ -f "src/$inc" || -f "$inc" ||
           -f "$(dirname "$f")/$inc" ]] ||
            err "$f: include \"$inc\" does not resolve"
    done < <(sed -n 's/^#include "\([^"]*\)".*/\1/p' "$f")
done

for f in "${sources[@]}"; do
    [[ "$f" == src/*.cc ]] || continue
    own="${f#src/}"
    own="${own%.cc}.hh"
    [[ -f "src/$own" ]] || continue # no matching header (e.g. mains)
    first=$(sed -n 's/^#include "\([^"]*\)".*/\1/p' "$f" | head -n 1)
    [[ "$first" == "$own" ]] ||
        err "$f: own header \"$own\" must be the first include"
done

# ---------------------------------------------------------------
# 4. Error-handling policy (DESIGN.md): GENAX_FATAL is reserved for
#    the logging layer itself. Everywhere else, environment and input
#    failures travel through Status (common/status.hh) and programmer
#    invariants through GENAX_CHECK, so callers can recover and tests
#    can intercept. Tests may still exercise the macro itself.
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    [[ "$f" == src/common/* || "$f" == tests/* ]] && continue
    if grep -n '\bGENAX_FATAL\b' "$f"; then
        err "$f: GENAX_FATAL outside src/common; return a Status (or GENAX_CHECK for invariants)"
    fi
done

# ---------------------------------------------------------------
# 5. Whitespace: no tabs, no trailing whitespace in C++ sources.
# ---------------------------------------------------------------
for f in "${sources[@]}"; do
    if grep -qP '\t' "$f"; then
        if ((fix_ws)); then
            sed -i 's/\t/    /g' "$f"
            echo "lint: $f: expanded tabs (fixed)"
        else
            err "$f: tab characters (run with --fix-whitespace)"
        fi
    fi
    if grep -qP '[ \t]+$' "$f"; then
        if ((fix_ws)); then
            sed -i 's/[[:space:]]*$//' "$f"
            echo "lint: $f: stripped trailing whitespace (fixed)"
        else
            err "$f: trailing whitespace (run with --fix-whitespace)"
        fi
    fi
done

if ((fail)); then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: OK (${#sources[@]} files)"
