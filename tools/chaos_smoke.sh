#!/usr/bin/env bash
# Chaos smoke test: drive genax_align over a deliberately malformed
# read corpus with fault-injection sites armed, and check the CLI's
# exit-code contract and outcome-ledger arithmetic from the outside.
# CI runs this under ASan+UBSan so every absorbed fault is also a
# memory-safety probe. See DESIGN.md, "Error-handling policy".
#
# Usage: tools/chaos_smoke.sh path/to/genax_align [path/to/genax_index]
#        [path/to/genax_serve path/to/genax_client]
# The snapshot-corruption leg runs only when genax_index is given; the
# daemon-kill leg (SIGKILL mid-batch: clean client error, no partial
# SAM, restart serves the same snapshot byte-identically) runs only
# when genax_serve and genax_client are given too.
set -u

bin="${1:?usage: chaos_smoke.sh path/to/genax_align [genax_index] [genax_serve genax_client]}"
index_bin="${2:-}"
serve_bin="${3:-}"
client_bin="${4:-}"
[[ -x "$bin" ]] || { echo "chaos-smoke: $bin not executable" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
err() {
    echo "chaos-smoke: $*" >&2
    fail=1
}

# ------------------------------------------------------------------
# Corpus: a deterministic pseudo-random contig (bash LCG, fixed seed)
# and reads cut straight from it, with malformed records interleaved:
# a quality-length mismatch, a missing separator, and a record
# truncated at EOF.
# ------------------------------------------------------------------
bases=(A C G T)
state=20180601
seq=""
for ((i = 0; i < 1200; i++)); do
    state=$(((state * 1103515245 + 12345) % 2147483648))
    seq+="${bases[$(((state >> 16) % 4))]}"
done

{
    echo ">chr1 chaos smoke contig"
    fold -w 70 <<<"$seq"
} >"$tmp/ref.fa"

qual=$(printf 'I%.0s' {1..80})
{
    for ((r = 0; r < 20; r++)); do
        printf '@read%d\n%s\n+\n%s\n' "$r" "${seq:$((r * 50)):80}" "$qual"
    done
    # Malformed: quality string shorter than the sequence.
    printf '@bad_qual\n%s\n+\nIIII\n' "${seq:100:80}"
    # Malformed: separator line missing ('+' replaced by junk), the
    # reader resyncs on the next '@' header.
    printf '@bad_sep\n%s\nJUNK\n%s\n' "${seq:200:80}" "$qual"
    # One more good read after the damage, then a truncated tail.
    printf '@read_last\n%s\n+\n%s\n' "${seq:300:80}" "$qual"
    printf '@truncated\n%s\n' "${seq:400:80}"
} >"$tmp/reads.fq"

run() { # run <log> <args...> ; echoes exit status
    local log="$1"
    shift
    "$bin" "$@" >"$tmp/stdout" 2>"$log"
    echo $?
}

check_ledger() { # check_ledger <log> <sam>
    local log="$1" sam="$2"
    local reads
    reads=$(sed -n 's/^aligned \([0-9]*\) reads.*/\1/p' "$log")
    if [[ -z "$reads" ]]; then
        err "no 'aligned N reads' line in $log"
        return
    fi
    read -r mapped unmapped skipped degraded failed < <(
        sed -n 's/^ledger: \([0-9]*\) mapped, \([0-9]*\) unmapped, \([0-9]*\) skipped-malformed, \([0-9]*\) degraded, \([0-9]*\) failed$/\1 \2 \3 \4 \5/p' "$log")
    if [[ -z "${failed:-}" ]]; then
        err "no ledger line in $log"
        return
    fi
    local sum=$((mapped + unmapped + skipped + degraded + failed))
    ((sum == reads)) ||
        err "ledger does not balance: $sum != $reads reads ($log)"
    # Every non-skipped read must have produced exactly one SAM record.
    local records
    records=$(grep -cv '^@' "$sam" || true)
    ((records == reads - skipped)) ||
        err "SAM has $records records, want $((reads - skipped)) ($log)"
}

# 1. Malformed corpus, no faults: completes, skips and counts the
#    broken records, exits 1 (partial).
status=$(run "$tmp/clean.log" --ref "$tmp/ref.fa" --reads "$tmp/reads.fq" \
    --out "$tmp/clean.sam" --k 11 --max-malformed 10)
((status == 1)) || err "malformed corpus: exit $status, want 1"
check_ledger "$tmp/clean.log" "$tmp/clean.sam"
grep -q 'skipped 3 malformed records' "$tmp/clean.log" ||
    err "expected 3 skipped records reported in clean.log"

# 2. Fault storm across the accelerator layers: run must still
#    complete with a balanced ledger and exit 1.
status=$(run "$tmp/storm.log" --ref "$tmp/ref.fa" --reads "$tmp/reads.fq" \
    --out "$tmp/storm.sam" --k 11 --max-malformed 10 \
    --inject 'sillax.lane.issue:p=0.3,seed=1;genax.dram.stream:p=0.5,seed=2;seed.cam.overflow:p=0.3,seed=3;genax.pipeline.read:p=0.15,seed=4')
((status == 1)) || err "fault storm: exit $status, want 1"
check_ledger "$tmp/storm.log" "$tmp/storm.sam"

# 3. An injected IO fault is unrecoverable for the file as a whole:
#    exit 3 and the site named in the diagnostic.
status=$(run "$tmp/io.log" --ref "$tmp/ref.fa" --reads "$tmp/reads.fq" \
    --out "$tmp/io.sam" --k 11 --max-malformed 10 \
    --inject 'io.fastq.record:n=5')
((status == 3)) || err "io fault: exit $status, want 3"
grep -q 'io.fastq.record' "$tmp/io.log" ||
    err "io fault diagnostic does not name the site"

# 4. Exit-code contract edges: bad --inject spec is a usage error,
#    a missing input is unrecoverable, --help succeeds.
status=$(run "$tmp/spec.log" --ref "$tmp/ref.fa" --reads "$tmp/reads.fq" \
    --out "$tmp/x.sam" --inject 'not-a-spec')
((status == 2)) || err "bad --inject: exit $status, want 2"
status=$(run "$tmp/miss.log" --ref "$tmp/absent.fa" \
    --reads "$tmp/reads.fq" --out "$tmp/x.sam")
((status == 3)) || err "missing reference: exit $status, want 3"
grep -q 'absent.fa' "$tmp/miss.log" ||
    err "missing-file diagnostic does not name the path"
status=$(run "$tmp/help.log" --help)
((status == 0)) || err "--help: exit $status, want 0"

# 5. Snapshot-corruption leg: build a flat index snapshot, corrupt
#    it, and check both CLIs honour the contract — genax_index
#    --verify exits 3 naming the damage, and genax_align --index
#    degrades to rebuild-from-FASTA with byte-identical SAM and
#    exit 1 (partial: the run completed but not as requested).
if [[ -n "$index_bin" ]]; then
    if [[ ! -x "$index_bin" ]]; then
        err "$index_bin not executable"
    else
        "$index_bin" --ref "$tmp/ref.fa" --out "$tmp/snap.gxs"             --format flat --segments 4 --k 11             >/dev/null 2>"$tmp/index.log"
        [[ $? -eq 0 ]] || err "flat snapshot build failed"
        "$index_bin" --verify "$tmp/snap.gxs" >/dev/null 2>&1 ||
            err "verify of the fresh snapshot failed"

        # Baseline SAM without a snapshot, then with the intact one:
        # must be byte-identical and exit identically.
        status=$(run "$tmp/nosnap.log" --ref "$tmp/ref.fa"             --reads "$tmp/reads.fq" --out "$tmp/nosnap.sam"             --k 11 --segments 4 --max-malformed 10)
        ((status == 1)) || err "baseline (no snapshot): exit $status, want 1"
        status=$(run "$tmp/snap.log" --ref "$tmp/ref.fa"             --reads "$tmp/reads.fq" --out "$tmp/snap.sam"             --index "$tmp/snap.gxs" --max-malformed 10)
        ((status == 1)) || err "snapshot run: exit $status, want 1"
        cmp -s "$tmp/nosnap.sam" "$tmp/snap.sam" ||
            err "snapshot SAM differs from in-memory SAM"

        # Corrupt one payload byte; --verify must reject with exit 3.
        cp "$tmp/snap.gxs" "$tmp/corrupt.gxs"
        printf 'ÿ' | dd of="$tmp/corrupt.gxs" bs=1 seek=2000             conv=notrunc status=none
        "$index_bin" --verify "$tmp/corrupt.gxs"             >/dev/null 2>"$tmp/verify.log"
        [[ $? -eq 3 ]] || err "verify of corrupt snapshot: want exit 3"
        grep -q 'checksum' "$tmp/verify.log" ||
            err "verify diagnostic does not mention the checksum"

        # The aligner must absorb the same corruption: degraded
        # rebuild, identical SAM, exit 1, and a note on stderr.
        status=$(run "$tmp/degraded.log" --ref "$tmp/ref.fa"             --reads "$tmp/reads.fq" --out "$tmp/degraded.sam"             --index "$tmp/corrupt.gxs" --max-malformed 10)
        ((status == 1)) || err "corrupt snapshot run: exit $status, want 1"
        grep -q 'rebuilding from FASTA' "$tmp/degraded.log" ||
            err "no degradation note for the corrupt snapshot"
        cmp -s "$tmp/nosnap.sam" "$tmp/degraded.sam" ||
            err "degraded-rebuild SAM differs from in-memory SAM"
    fi
fi

# 6. Daemon-kill leg: SIGKILL genax_serve while a client's request is
#    parked in the batcher. The client must fail cleanly (exit 3, no
#    partial SAM, no hang — the checksummed framing means a torn
#    stream is never *accepted*), and a restarted daemon on the same
#    snapshot must serve SAM byte-identical to the offline
#    `genax_align --index` run.
if [[ -n "$serve_bin" && -n "$client_bin" && -n "$index_bin" ]]; then
    if [[ ! -x "$serve_bin" || ! -x "$client_bin" ]]; then
        err "$serve_bin / $client_bin not executable"
    else
        sock="$tmp/serve.sock"
        # A clean corpus for the serve legs (the client refuses to
        # stream the malformed records the CLI legs exercise).
        for ((r = 0; r < 40; r++)); do
            printf '@sread%d\n%s\n+\n%s\n' \
                "$r" "${seq:$((r * 25)):80}" "$qual"
        done >"$tmp/serve_reads.fq"

        # Offline baseline over the same snapshot: the byte-identity
        # reference for the restarted daemon.
        status=$(run "$tmp/soffline.log" --ref "$tmp/ref.fa" \
            --reads "$tmp/serve_reads.fq" --out "$tmp/soffline.sam" \
            --index "$tmp/snap.gxs")
        ((status == 0)) || err "serve offline baseline: exit $status, want 0"

        # (a) A daemon configured so requests park in the batcher
        # (batch never fills, deadline far away), killed mid-batch.
        "$serve_bin" --ref "$tmp/ref.fa" --index "$tmp/snap.gxs" \
            --listen "unix:$sock" --batch-reads 100000 \
            --batch-wait-ms 60000 \
            >"$tmp/serve_kill.out" 2>"$tmp/serve_kill.log" &
        spid=$!
        timeout 30 "$client_bin" --connect "unix:$sock" \
            --reads "$tmp/serve_reads.fq" --out "$tmp/killed.sam" \
            2>"$tmp/killed.log" &
        cpid=$!
        sleep 1 # client connected; its first request is parked
        kill -9 "$spid" 2>/dev/null
        wait "$cpid"
        status=$?
        ((status == 3)) ||
            err "daemon killed mid-batch: client exit $status, want 3 ($(cat "$tmp/killed.log"))"
        [[ ! -e "$tmp/killed.sam" ]] ||
            err "client left a partial SAM after the daemon died"
        wait "$spid" 2>/dev/null

        # (b) Restart on the same snapshot and socket path (the
        # listener unlinks the stale socket file): the served SAM
        # must be byte-identical to the offline --index run.
        "$serve_bin" --ref "$tmp/ref.fa" --index "$tmp/snap.gxs" \
            --listen "unix:$sock" \
            >"$tmp/serve2.out" 2>"$tmp/serve2.log" &
        spid=$!
        timeout 60 "$client_bin" --connect "unix:$sock" \
            --reads "$tmp/serve_reads.fq" --out "$tmp/served.sam" \
            --reads-per-request 7 2>"$tmp/served.log"
        status=$?
        ((status == 0)) ||
            err "restarted daemon: client exit $status, want 0 ($(cat "$tmp/served.log"))"
        cmp -s "$tmp/soffline.sam" "$tmp/served.sam" ||
            err "served SAM differs from the offline --index run"
        kill -TERM "$spid" 2>/dev/null
        wait "$spid"
        status=$?
        ((status == 0)) ||
            err "restarted daemon: shutdown exit $status, want 0"
        grep -q 'served .* connections' "$tmp/serve2.log" ||
            err "no serving ledger on the restarted daemon's stderr"
    fi
fi

if ((fail)); then
    echo "chaos-smoke: FAILED" >&2
    exit 1
fi
echo "chaos-smoke: OK"
