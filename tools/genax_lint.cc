/**
 * @file
 * genax_lint — determinism & concurrency invariant checker.
 *
 * Walks every repository source listed in a compile_commands.json
 * (plus the project headers they include, transitively) and enforces
 * the invariants the repo's determinism guarantee rests on. The
 * checks are lexical — comments and string/char literals are
 * stripped before matching — so the tool builds and runs anywhere
 * the C++ toolchain does, with no libclang dependency.
 *
 * Rules (scopes are repo-relative paths):
 *
 *   unordered-iter  Iteration over a std::unordered_map/set declared
 *                   in a file that produces SAM/ledger/cycle output.
 *                   Hash-order iteration is the classic way
 *                   byte-identical output dies.
 *   wall-clock      std::chrono::system_clock,
 *                   high_resolution_clock, time(), clock(),
 *                   localtime/gmtime or getenv outside tools/ and
 *                   bench/. Simulation results must be a function of
 *                   inputs + seeds, never of the clock or the
 *                   environment. The one sanctioned in-src timing
 *                   pattern is steady_clock *deltas* feeding a
 *                   LatencyHistogram (observability output, never a
 *                   determinism contract — see the serving layer's
 *                   batcher); steady_clock itself is therefore not
 *                   flagged, but the non-monotonic clocks are.
 *   raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
 *                   std::condition_variable (and friends) outside
 *                   src/common/. Concurrency code must use the
 *                   annotated Mutex/MutexLock/CondVar wrappers from
 *                   common/annotations.hh so Clang -Wthread-safety
 *                   sees every lock relationship.
 *   fp-accum        `+=` involving a double declared in a file that
 *                   also references the thread pool (parallelFor /
 *                   ThreadPool / std::thread). Float accumulation
 *                   order is scheduling-dependent; reductions must
 *                   fold u64 counters in slot order and derive
 *                   doubles afterwards (DESIGN.md "Deterministic
 *                   reduction").
 *   naked-new       `new` / malloc / calloc / realloc in the
 *                   arena-backed hot-path directories (src/seed/,
 *                   src/genax/). Per-read scratch goes through the
 *                   per-worker bump arenas.
 *   raw-rng         std::mt19937 / random_device / rand() etc.
 *                   outside src/common/rng.hh. All randomness flows
 *                   through the seeded Rng so runs replay.
 *                   (Moved here from tools/lint.sh.)
 *   raw-fatal       GENAX_FATAL outside src/common/ and tests/.
 *                   Environment failures travel through Status so
 *                   callers can recover. (Moved from tools/lint.sh.)
 *   unchecked-write fwrite / ::write / fsync / fdatasync whose return
 *                   value is discarded (statement position or a
 *                   (void) cast) inside src/io/. Ignoring a write
 *                   result turns ENOSPC/EIO into silent data loss;
 *                   results must flow into a Status.
 *
 * Suppression: a finding is waived by a comment on the same line or
 * on a directly preceding comment-only line:
 *
 *     // genax-lint: allow(<rule>): <reason>
 *
 * The reason is mandatory — a reasonless allow() is itself an error.
 * Honored suppressions are counted and reported; directives that
 * matched nothing are reported as warnings so stale waivers surface.
 *
 * Usage:
 *   genax_lint [-p <compile_commands.json|builddir>] [--repo <root>]
 *   genax_lint --scope-as <repo-relative-path> --files <file>...
 *   genax_lint --list-rules
 *
 * Exit codes: 0 clean, 1 findings (or bad suppressions), 2 usage or
 * IO error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ----------------------------------------------------------------
// Small string helpers
// ----------------------------------------------------------------

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Find `tok` at position >= from with identifier boundaries on both
 *  sides ('%' in `tok` may itself contain "::"). npos when absent. */
size_t
findToken(const std::string &s, const std::string &tok, size_t from)
{
    for (size_t pos = s.find(tok, from); pos != std::string::npos;
         pos = s.find(tok, pos + 1)) {
        const bool left_ok =
            pos == 0 || !isIdentChar(s[pos - 1]);
        const size_t end = pos + tok.size();
        const bool right_ok =
            end >= s.size() || !isIdentChar(s[end]);
        if (left_ok && right_ok)
            return pos;
    }
    return std::string::npos;
}

/** First identifier starting at or after `pos` (skips spaces). Empty
 *  when the next non-space char does not start an identifier. */
std::string
identAt(const std::string &s, size_t pos)
{
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t'))
        ++pos;
    if (pos >= s.size() || !isIdentChar(s[pos]) ||
        (s[pos] >= '0' && s[pos] <= '9'))
        return {};
    size_t end = pos;
    while (end < s.size() && isIdentChar(s[end]))
        ++end;
    return s.substr(pos, end - pos);
}

/** Last identifier ending at or before `pos` (skips spaces going
 *  left); used to grab the LHS of a `+=`. */
std::string
identBefore(const std::string &s, size_t pos)
{
    while (pos > 0 && (s[pos - 1] == ' ' || s[pos - 1] == '\n' ||
                       s[pos - 1] == '\t'))
        --pos;
    if (pos == 0 || !isIdentChar(s[pos - 1]))
        return {};
    size_t begin = pos;
    while (begin > 0 && isIdentChar(s[begin - 1]))
        --begin;
    return s.substr(begin, pos - begin);
}

// ----------------------------------------------------------------
// Comment / literal stripping
// ----------------------------------------------------------------

/** One source file split into analyzable code and comment text; both
 *  preserve the original newlines so offsets map back to lines. */
struct Stripped
{
    std::string code;    //!< literals blanked, comments removed
    std::string comment; //!< comment text only (same line layout)
};

Stripped
stripSource(const std::string &text)
{
    Stripped out;
    out.code.reserve(text.size());
    out.comment.reserve(text.size() / 4);

    enum class St {
        Code,
        Str,
        RawStr,
        Chr,
        LineComment,
        BlockComment
    };
    St st = St::Code;
    std::string raw_delim; // for R"delim( ... )delim"

    // comment text needs newline placeholders to stay line-aligned.
    std::string comment_line;
    const auto flushCommentLine = [&]() {
        out.comment += comment_line;
        out.comment += '\n';
        comment_line.clear();
    };

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::LineComment)
                st = St::Code;
            out.code += '\n';
            flushCommentLine();
            continue;
        }
        switch (st) {
        case St::Code:
            if (c == '/' && next == '/') {
                st = St::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == '"') {
                // Raw string? Look back for an R prefix.
                if (i > 0 && text[i - 1] == 'R' &&
                    (i < 2 || !isIdentChar(text[i - 2]))) {
                    raw_delim.clear();
                    size_t j = i + 1;
                    while (j < text.size() && text[j] != '(')
                        raw_delim += text[j++];
                    i = j; // at '('
                    st = St::RawStr;
                } else {
                    st = St::Str;
                }
                out.code += '"';
            } else if (c == '\'') {
                st = St::Chr;
                out.code += '\'';
            } else {
                out.code += c;
            }
            break;
        case St::Str:
            if (c == '\\') {
                ++i; // skip escaped char (newline-in-string is UB
                     // anyway; escaped newlines are not handled)
            } else if (c == '"') {
                st = St::Code;
                out.code += '"';
            }
            break;
        case St::RawStr: {
            const std::string close = ")" + raw_delim + "\"";
            if (text.compare(i, close.size(), close) == 0) {
                i += close.size() - 1;
                st = St::Code;
                out.code += '"';
            }
            break;
        }
        case St::Chr:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                out.code += '\'';
            }
            break;
        case St::LineComment:
            comment_line += c;
            break;
        case St::BlockComment:
            if (c == '*' && next == '/') {
                st = St::Code;
                ++i;
            } else {
                comment_line += c;
            }
            break;
        }
    }
    out.code += '\n';
    flushCommentLine();
    return out;
}

/** 1-based line number of a byte offset into a newline-preserving
 *  string. */
class LineIndex
{
  public:
    explicit LineIndex(const std::string &s)
    {
        _starts.push_back(0);
        for (size_t i = 0; i < s.size(); ++i)
            if (s[i] == '\n')
                _starts.push_back(i + 1);
    }

    size_t
    lineOf(size_t offset) const
    {
        const auto it = std::upper_bound(_starts.begin(),
                                         _starts.end(), offset);
        return static_cast<size_t>(it - _starts.begin());
    }

    size_t
    count() const
    {
        return _starts.size();
    }

  private:
    std::vector<size_t> _starts;
};

// ----------------------------------------------------------------
// Rules
// ----------------------------------------------------------------

const std::vector<std::pair<const char *, const char *>> kRules = {
    {"unordered-iter",
     "hash-order iteration in an output-producing file"},
    {"wall-clock",
     "wall-clock/environment read outside tools/ and bench/"},
    {"raw-mutex",
     "raw std:: locking outside src/common/ (use annotations.hh)"},
    {"fp-accum",
     "floating-point accumulation in thread-pool-adjacent code"},
    {"naked-new", "naked new/malloc in an arena-backed directory"},
    {"raw-rng", "raw RNG outside common/rng.hh"},
    {"raw-fatal", "GENAX_FATAL outside src/common/ and tests/"},
    {"unchecked-write",
     "discarded fwrite/::write/fsync result in src/io/"},
};

bool
knownRule(const std::string &name)
{
    for (const auto &[rule, desc] : kRules)
        if (name == rule)
            return true;
    return false;
}

struct Finding
{
    std::string file; // repo-relative
    size_t line;
    std::string rule;
    std::string message;
};

struct Directive
{
    std::string rule;
    bool hasReason = false;
    bool used = false;
};

/** Per-file suppression table: line -> directives on that line. */
using DirectiveMap = std::map<size_t, std::vector<Directive>>;

/**
 * Parse suppression directives out of the comment channel. A
 * directive must be the start of its comment (only whitespace
 * before the marker), which keeps prose that merely *mentions* the
 * syntax — like this tool's own documentation — from registering.
 */
DirectiveMap
parseDirectives(const std::string &comment)
{
    DirectiveMap out;
    const std::string marker = "genax-lint:";
    std::istringstream is(comment);
    std::string line;
    for (size_t lineno = 1; std::getline(is, line); ++lineno) {
        size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos ||
            line.compare(p, marker.size(), marker) != 0)
            continue;
        p += marker.size();
        while (p < line.size() && line[p] == ' ')
            ++p;
        const std::string kw = "allow(";
        if (line.compare(p, kw.size(), kw) != 0)
            continue;
        p += kw.size();
        const size_t close = line.find(')', p);
        if (close == std::string::npos)
            continue;
        Directive d;
        d.rule = line.substr(p, close - p);
        // A reason is everything after an optional ':' up to the end
        // of the comment line; it must contain a word character.
        size_t r = close + 1;
        while (r < line.size() && line[r] == ' ')
            ++r;
        if (r < line.size() && line[r] == ':') {
            const std::string reason = line.substr(r + 1);
            for (const char c : reason)
                if (isIdentChar(c)) {
                    d.hasReason = true;
                    break;
                }
        }
        out[lineno].push_back(d);
    }
    return out;
}

/** True when the stripped-code line holds no code (so a directive on
 *  it covers the next line). */
bool
commentOnlyLine(const std::vector<std::string> &codeLines, size_t line)
{
    if (line == 0 || line > codeLines.size())
        return false;
    const std::string &s = codeLines[line - 1];
    return s.find_first_not_of(" \t\r") == std::string::npos;
}

// ----------------------------------------------------------------
// Per-file analysis
// ----------------------------------------------------------------

struct FileScope
{
    bool inSrc = false;        // under src/
    bool inCommon = false;     // under src/common/
    bool inTests = false;      // under tests/
    bool arenaBacked = false;  // src/seed/ or src/genax/
    bool isRngHeader = false;  // src/common/rng.hh itself
    bool inIo = false;         // under src/io/
};

FileScope
scopeFor(const std::string &rel)
{
    FileScope sc;
    sc.inSrc = startsWith(rel, "src/");
    sc.inCommon = startsWith(rel, "src/common/");
    sc.inTests = startsWith(rel, "tests/");
    sc.arenaBacked =
        startsWith(rel, "src/seed/") || startsWith(rel, "src/genax/");
    sc.isRngHeader = rel == "src/common/rng.hh";
    sc.inIo = startsWith(rel, "src/io/");
    return sc;
}

/** Collect identifiers declared with any of the given type tokens
 *  (`std::unordered_map<...> name`, `double name`, ...). */
std::set<std::string>
collectDeclaredNames(const std::string &code,
                     const std::vector<std::string> &typeTokens,
                     bool skipTemplateArgs)
{
    std::set<std::string> names;
    for (const auto &tok : typeTokens) {
        for (size_t pos = findToken(code, tok, 0);
             pos != std::string::npos;
             pos = findToken(code, tok, pos + 1)) {
            size_t p = pos + tok.size();
            if (skipTemplateArgs) {
                while (p < code.size() && code[p] == ' ')
                    ++p;
                if (p >= code.size() || code[p] != '<')
                    continue;
                int depth = 0;
                while (p < code.size()) {
                    if (code[p] == '<')
                        ++depth;
                    else if (code[p] == '>' && --depth == 0) {
                        ++p;
                        break;
                    }
                    ++p;
                }
            }
            const std::string name = identAt(code, p);
            if (name.empty() || name == "const")
                continue;
            // Reject `double>` / `(double)` style uses: identAt
            // already returned empty for those. Reject references to
            // other types (e.g. `unsigned double` cannot happen).
            names.insert(name);
        }
    }
    return names;
}

class FileChecker
{
  public:
    FileChecker(std::string rel, const std::string &text)
        : _rel(std::move(rel)), _scope(scopeFor(_rel)),
          _stripped(stripSource(text)), _lines(_stripped.code),
          _directives(parseDirectives(_stripped.comment))
    {
        // Split stripped code into lines once for the comment-only
        // lookback used by suppression matching.
        std::istringstream is(_stripped.code);
        std::string line;
        while (std::getline(is, line))
            _codeLines.push_back(line);
    }

    /** Run every rule; returns findings (suppressed ones omitted). */
    std::vector<Finding>
    run()
    {
        if (_scope.inSrc) {
            if (!_scope.inCommon)
                ruleRawMutex();
            ruleWallClock();
            ruleUnorderedIter();
            ruleFpAccum();
            if (_scope.arenaBacked)
                ruleNakedNew();
            if (_scope.inIo)
                ruleUncheckedWrite();
        }
        if (!_scope.isRngHeader)
            ruleRawRng();
        if (!_scope.inCommon && !_scope.inTests)
            ruleRawFatal();
        checkDirectiveHygiene();
        return std::move(_findings);
    }

    size_t
    suppressedCount() const
    {
        return _suppressed;
    }

    const std::vector<std::string> &
    errors() const
    {
        return _errors;
    }

    const std::vector<std::string> &
    warnings() const
    {
        return _warnings;
    }

  private:
    void
    report(size_t offset, const std::string &rule,
           const std::string &message)
    {
        const size_t line = _lines.lineOf(offset);
        if (suppressed(line, rule)) {
            ++_suppressed;
            return;
        }
        _findings.push_back({_rel, line, rule, message});
    }

    bool
    suppressed(size_t line, const std::string &rule)
    {
        for (size_t l = line;;) {
            const auto it = _directives.find(l);
            if (it != _directives.end()) {
                for (Directive &d : it->second) {
                    if (d.rule == rule && d.hasReason) {
                        d.used = true;
                        return true;
                    }
                    if (d.rule == rule && !d.hasReason)
                        d.used = true; // claimed, but still invalid
                }
            }
            // Walk up through directly preceding comment-only lines.
            if (l == 0 || !commentOnlyLine(_codeLines, l - 1))
                break;
            --l;
        }
        return false;
    }

    void
    checkDirectiveHygiene()
    {
        for (auto &[line, ds] : _directives) {
            for (Directive &d : ds) {
                if (!knownRule(d.rule)) {
                    _errors.push_back(
                        _rel + ":" + std::to_string(line) +
                        ": unknown rule in allow(): " + d.rule);
                    continue;
                }
                if (!d.hasReason) {
                    _errors.push_back(
                        _rel + ":" + std::to_string(line) +
                        ": allow(" + d.rule +
                        ") without a reason — write 'genax-lint: "
                        "allow(" +
                        d.rule + "): <why this is safe>'");
                    continue;
                }
                if (!d.used) {
                    _warnings.push_back(
                        _rel + ":" + std::to_string(line) +
                        ": stale allow(" + d.rule +
                        ") suppresses nothing");
                }
            }
        }
    }

    // ---- individual rules ----

    void
    ruleWallClock()
    {
        const std::string &code = _stripped.code;
        for (const char *tok :
             {"system_clock", "getenv", "localtime", "gmtime"}) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                report(p, "wall-clock",
                       std::string(tok) +
                           " makes output depend on the "
                           "environment; results must be a pure "
                           "function of inputs and seeds");
            }
        }
        // high_resolution_clock is an alias for system_clock on
        // common standard libraries, so it is just as non-monotonic
        // — and latency timing is the usual reason people reach for
        // it. Point at the sanctioned pattern instead.
        for (size_t p = findToken(code, "high_resolution_clock", 0);
             p != std::string::npos;
             p = findToken(code, "high_resolution_clock", p + 1)) {
            report(p, "wall-clock",
                   "high_resolution_clock may alias the wall clock; "
                   "time with steady_clock deltas feeding a "
                   "LatencyHistogram (the sanctioned profiling "
                   "pattern)");
        }
        // time( / clock( need the call parenthesis so identifiers
        // like `timeModel` or members named `clock` do not trip.
        for (const char *tok : {"time", "clock"}) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                size_t q = p + std::string(tok).size();
                while (q < code.size() && code[q] == ' ')
                    ++q;
                if (q < code.size() && code[q] == '(') {
                    report(p, "wall-clock",
                           std::string(tok) +
                               "() reads the wall clock; use "
                               "modelled time or steady_clock "
                               "deltas in tools/bench only");
                }
            }
        }
    }

    void
    ruleRawMutex()
    {
        static const std::vector<std::string> toks = {
            "std::mutex",          "std::recursive_mutex",
            "std::timed_mutex",    "std::shared_mutex",
            "std::lock_guard",     "std::unique_lock",
            "std::scoped_lock",    "std::condition_variable",
            "std::condition_variable_any",
        };
        const std::string &code = _stripped.code;
        for (const auto &tok : toks) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                report(p, "raw-mutex",
                       tok + " bypasses the annotated wrappers; use "
                             "genax::Mutex/MutexLock/CondVar from "
                             "common/annotations.hh so "
                             "-Wthread-safety checks the lock "
                             "relationships");
            }
        }
    }

    void
    ruleRawRng()
    {
        const std::string &code = _stripped.code;
        // mt19937_64 is a separate identifier, so the plain mt19937
        // token would not match it (tokens match whole identifiers).
        for (const char *tok : {"mt19937", "mt19937_64",
                                "minstd_rand", "random_device",
                                "random_shuffle"}) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                report(p, "raw-rng",
                       std::string(tok) +
                           ": route randomness through "
                           "common/rng.hh so runs replay from a "
                           "seed");
            }
        }
        for (const char *tok : {"rand", "srand"}) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                size_t q = p + std::string(tok).size();
                while (q < code.size() && code[q] == ' ')
                    ++q;
                if (q < code.size() && code[q] == '(') {
                    report(p, "raw-rng",
                           std::string(tok) +
                               "(): route randomness through "
                               "common/rng.hh so runs replay from "
                               "a seed");
                }
            }
        }
    }

    void
    ruleRawFatal()
    {
        const std::string &code = _stripped.code;
        for (size_t p = findToken(code, "GENAX_FATAL", 0);
             p != std::string::npos;
             p = findToken(code, "GENAX_FATAL", p + 1)) {
            report(p, "raw-fatal",
                   "GENAX_FATAL outside src/common; return a Status "
                   "(or GENAX_CHECK for invariants) so callers can "
                   "recover");
        }
    }

    void
    ruleNakedNew()
    {
        const std::string &code = _stripped.code;
        for (size_t p = findToken(code, "new", 0);
             p != std::string::npos;
             p = findToken(code, "new", p + 1)) {
            // `operator new` overloads are allocator plumbing, not a
            // call site.
            if (identBefore(code, p) == "operator")
                continue;
            report(p, "naked-new",
                   "naked new in an arena-backed directory; per-item "
                   "scratch goes through the per-worker Arena "
                   "(common/arena.hh)");
        }
        for (const char *tok : {"malloc", "calloc", "realloc"}) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                size_t q = p + std::string(tok).size();
                while (q < code.size() && code[q] == ' ')
                    ++q;
                if (q < code.size() && code[q] == '(') {
                    report(p, "naked-new",
                           std::string(tok) +
                               "() in an arena-backed directory; "
                               "use the per-worker Arena");
                }
            }
        }
    }

    void
    ruleUncheckedWrite()
    {
        const std::string &code = _stripped.code;
        for (const char *tok :
             {"fwrite", "write", "fsync", "fdatasync"}) {
            for (size_t p = findToken(code, tok, 0);
                 p != std::string::npos;
                 p = findToken(code, tok, p + 1)) {
                // Must be a call, not a declaration or member name.
                size_t q = p + std::string(tok).size();
                while (q < code.size() && code[q] == ' ')
                    ++q;
                if (q >= code.size() || code[q] != '(')
                    continue;
                // Accept a global-scope qualifier (::write); reject
                // class qualification (SamWriter::write) and member
                // calls (out.write — iostream state carries those).
                size_t s = p;
                if (s >= 2 && code[s - 1] == ':' &&
                    code[s - 2] == ':') {
                    s -= 2;
                    if (s > 0 && isIdentChar(code[s - 1]))
                        continue;
                }
                size_t r = s;
                while (r > 0 &&
                       (code[r - 1] == ' ' || code[r - 1] == '\n' ||
                        code[r - 1] == '\t' || code[r - 1] == '\r'))
                    --r;
                bool discarded =
                    r == 0 || code[r - 1] == ';' ||
                    code[r - 1] == '{' || code[r - 1] == '}';
                // An explicit (void) cast is still an unchecked
                // write as far as durability goes.
                const std::string cast = "(void)";
                if (r >= cast.size() &&
                    code.compare(r - cast.size(), cast.size(),
                                 cast) == 0)
                    discarded = true;
                if (!discarded)
                    continue;
                report(p, "unchecked-write",
                       std::string(tok) +
                           " result discarded; ENOSPC/EIO become "
                           "silent data loss — check the return "
                           "value and surface a Status");
            }
        }
    }

    void
    ruleUnorderedIter()
    {
        const std::string &code = _stripped.code;
        // Only files that emit order-sensitive output are in scope.
        bool output_producing = false;
        for (const char *tok :
             {"SamWriter", "SamRecord", "ledger", "Ledger", "cycles",
              "Cycles"}) {
            if (findToken(code, tok, 0) != std::string::npos) {
                output_producing = true;
                break;
            }
        }
        if (!output_producing)
            return;
        const std::set<std::string> names = collectDeclaredNames(
            code, {"std::unordered_map", "std::unordered_set"}, true);
        for (const auto &name : names) {
            for (size_t p = findToken(code, name, 0);
                 p != std::string::npos;
                 p = findToken(code, name, p + 1)) {
                bool iterates = false;
                // Range-for: `... : name)` with a ':' directly
                // before (not '::').
                size_t q = p;
                while (q > 0 && (code[q - 1] == ' ' ||
                                 code[q - 1] == '\n'))
                    --q;
                if (q > 0 && code[q - 1] == ':' &&
                    (q < 2 || code[q - 2] != ':'))
                    iterates = true;
                // Explicit iterators: name.begin() / name.cbegin().
                const size_t after = p + name.size();
                for (const char *m : {".begin(", ".cbegin("}) {
                    if (code.compare(after, std::string(m).size(),
                                     m) == 0)
                        iterates = true;
                }
                if (iterates) {
                    report(p, "unordered-iter",
                           "iterating '" + name +
                               "' (unordered container) in an "
                               "output-producing file; hash order "
                               "is not deterministic across "
                               "platforms — use a sorted container "
                               "or sort before emission");
                }
            }
        }
    }

    void
    ruleFpAccum()
    {
        const std::string &code = _stripped.code;
        bool pool_adjacent = false;
        for (const char *tok :
             {"parallelFor", "ThreadPool", "std::thread"}) {
            if (code.find(tok) != std::string::npos) {
                pool_adjacent = true;
                break;
            }
        }
        if (!pool_adjacent)
            return;
        const std::set<std::string> doubles =
            collectDeclaredNames(code, {"double", "float"}, false);
        if (doubles.empty())
            return;
        for (size_t p = code.find("+="); p != std::string::npos;
             p = code.find("+=", p + 2)) {
            const std::string lhs = identBefore(code, p);
            const std::string rhs = identAt(code, p + 2);
            if (doubles.count(lhs) || doubles.count(rhs)) {
                report(p, "fp-accum",
                       "floating-point '+=' near thread-pool code; "
                       "accumulation order is "
                       "scheduling-dependent — fold u64 counters "
                       "in slot order and derive doubles after the "
                       "parallel region");
            }
        }
    }

    std::string _rel;
    FileScope _scope;
    Stripped _stripped;
    LineIndex _lines;
    DirectiveMap _directives;
    std::vector<std::string> _codeLines;
    std::vector<Finding> _findings;
    std::vector<std::string> _errors;
    std::vector<std::string> _warnings;
    size_t _suppressed = 0;
};

// ----------------------------------------------------------------
// compile_commands.json walking
// ----------------------------------------------------------------

/** Minimal extraction of "directory"/"file" string values, in
 *  document order, tolerant of escaped characters. */
std::vector<fs::path>
filesFromCompileCommands(const std::string &text, std::string *error)
{
    std::vector<fs::path> out;
    std::string directory;
    const auto readString = [&](size_t &pos) -> std::string {
        // pos is at the opening quote.
        std::string v;
        for (++pos; pos < text.size() && text[pos] != '"'; ++pos) {
            if (text[pos] == '\\' && pos + 1 < text.size()) {
                ++pos;
                v += text[pos]; // \" \\ \/ are the realistic cases
            } else {
                v += text[pos];
            }
        }
        return v;
    };
    for (size_t pos = 0; pos < text.size(); ++pos) {
        for (const char *key : {"\"directory\"", "\"file\""}) {
            const std::string k = key;
            if (text.compare(pos, k.size(), k) != 0)
                continue;
            size_t p = pos + k.size();
            while (p < text.size() &&
                   (text[p] == ' ' || text[p] == ':' ||
                    text[p] == '\n' || text[p] == '\t'))
                ++p;
            if (p >= text.size() || text[p] != '"')
                continue;
            const std::string value = readString(p);
            if (k == "\"directory\"") {
                directory = value;
            } else {
                fs::path f(value);
                if (f.is_relative() && !directory.empty())
                    f = fs::path(directory) / f;
                out.push_back(f);
            }
            pos = p;
        }
    }
    if (out.empty() && error)
        *error = "no \"file\" entries found in compile_commands.json";
    return out;
}

bool
readFile(const fs::path &p, std::string *out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Quoted project includes of a source, resolved against the repo
 *  layout (src/-rooted, repo-rooted, or sibling). */
std::vector<fs::path>
resolveIncludes(const std::string &text, const fs::path &file,
                const fs::path &repo)
{
    std::vector<fs::path> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '#')
            continue;
        p = line.find("include", p);
        if (p == std::string::npos)
            continue;
        const size_t open = line.find('"', p);
        if (open == std::string::npos)
            continue;
        const size_t close = line.find('"', open + 1);
        if (close == std::string::npos)
            continue;
        const std::string inc =
            line.substr(open + 1, close - open - 1);
        for (const fs::path &cand :
             {repo / "src" / inc, repo / inc,
              file.parent_path() / inc}) {
            std::error_code ec;
            if (fs::is_regular_file(cand, ec)) {
                out.push_back(fs::weakly_canonical(cand, ec));
                break;
            }
        }
    }
    return out;
}

void
usage(std::ostream &os)
{
    os << "usage: genax_lint [-p <compile_commands.json|builddir>]"
          " [--repo <root>] [-v]\n"
          "       genax_lint --scope-as <repo-relative-path>"
          " --files <file>...\n"
          "       genax_lint --list-rules\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path compdb;
    fs::path repo = fs::current_path();
    std::vector<fs::path> explicit_files;
    std::string scope_as;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-p" && i + 1 < argc) {
            compdb = argv[++i];
        } else if (arg == "--repo" && i + 1 < argc) {
            repo = argv[++i];
        } else if (arg == "--scope-as" && i + 1 < argc) {
            scope_as = argv[++i];
        } else if (arg == "--files") {
            for (++i; i < argc; ++i)
                explicit_files.emplace_back(argv[i]);
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else if (arg == "--list-rules") {
            for (const auto &[rule, desc] : kRules)
                std::cout << rule << "\t" << desc << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "genax_lint: unknown argument: " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    std::error_code ec;
    repo = fs::weakly_canonical(repo, ec);

    // Assemble the work list: explicit files, or the compile database
    // plus every project header reachable from it.
    std::vector<std::pair<fs::path, std::string>> work; // path, rel
    if (!explicit_files.empty()) {
        for (const auto &f : explicit_files) {
            const std::string rel =
                scope_as.empty() ? f.generic_string() : scope_as;
            work.emplace_back(f, rel);
        }
    } else {
        if (compdb.empty()) {
            for (const char *cand :
                 {"compile_commands.json",
                  "build/compile_commands.json"}) {
                if (fs::is_regular_file(repo / cand, ec)) {
                    compdb = repo / cand;
                    break;
                }
            }
        }
        if (!compdb.empty() && fs::is_directory(compdb, ec))
            compdb /= "compile_commands.json";
        std::string text;
        if (compdb.empty() || !readFile(compdb, &text)) {
            std::cerr << "genax_lint: cannot read compile database"
                      << (compdb.empty()
                              ? std::string(
                                    " (no -p given and no "
                                    "compile_commands.json found)")
                              : ": " + compdb.string())
                      << "\n";
            return 2;
        }
        std::string parse_error;
        std::vector<fs::path> queue =
            filesFromCompileCommands(text, &parse_error);
        if (queue.empty()) {
            std::cerr << "genax_lint: " << parse_error << "\n";
            return 2;
        }
        std::set<std::string> visited;
        while (!queue.empty()) {
            fs::path f = fs::weakly_canonical(queue.back(), ec);
            queue.pop_back();
            const std::string abs = f.generic_string();
            const std::string root = repo.generic_string() + "/";
            if (!startsWith(abs, root))
                continue; // system / external file
            if (!visited.insert(abs).second)
                continue;
            const std::string rel = abs.substr(root.size());
            work.emplace_back(f, rel);
            std::string src;
            if (readFile(f, &src)) {
                for (const auto &inc :
                     resolveIncludes(src, f, repo))
                    queue.push_back(inc);
            }
        }
        std::sort(work.begin(), work.end(),
                  [](const auto &a, const auto &b) {
                      return a.second < b.second;
                  });
    }

    size_t findings = 0, suppressed = 0, errors = 0, warnings = 0;
    for (const auto &[path, rel] : work) {
        std::string text;
        if (!readFile(path, &text)) {
            std::cerr << "genax_lint: cannot read " << path.string()
                      << "\n";
            return 2;
        }
        FileChecker checker(rel, text);
        for (const Finding &f : checker.run()) {
            std::cout << f.file << ":" << f.line << ": error: ["
                      << f.rule << "] " << f.message << "\n";
            ++findings;
        }
        for (const std::string &e : checker.errors()) {
            std::cout << e << "\n";
            ++errors;
        }
        for (const std::string &w : checker.warnings()) {
            std::cout << "warning: " << w << "\n";
            ++warnings;
        }
        suppressed += checker.suppressedCount();
        if (verbose && checker.suppressedCount() > 0) {
            std::cout << rel << ": " << checker.suppressedCount()
                      << " suppression(s) honored\n";
        }
    }

    std::cout << "genax_lint: " << work.size() << " file(s), "
              << findings << " finding(s), " << suppressed
              << " suppression(s) honored";
    if (errors > 0)
        std::cout << ", " << errors << " directive error(s)";
    if (warnings > 0)
        std::cout << ", " << warnings << " stale directive(s)";
    std::cout << "\n";
    return findings > 0 || errors > 0 ? 1 : 0;
}
