/**
 * @file
 * store_chaos — corruption- and crash-chaos harness for the on-disk
 * store layer, runnable standalone or from tools/store_chaos.sh.
 *
 *   store_chaos build <out.gxs> [seed]   build a deterministic
 *                                        reference snapshot
 *   store_chaos truncate <file>          cut at every section
 *                                        boundary (and off-by-ones);
 *                                        every cut must be rejected
 *   store_chaos bitflip <file> <n> <seed>
 *                                        n seeded single-bit flips;
 *                                        each must be rejected or
 *                                        provably benign (padding)
 *   store_chaos killsave <dir>           kill the process at every
 *                                        write boundary and around
 *                                        the rename while saving;
 *                                        the target must always be
 *                                        the old file or a fully
 *                                        valid new one
 *
 * The sweeps exercise the exact code paths genax_align trusts at
 * startup, so CI runs them under ASan+UBSan: any crash, hang or
 * accepted-but-corrupt store is a bug.
 *
 * Exit codes: 0 all invariants held, 1 an invariant was violated,
 * 2 usage error, 3 unrecoverable error (e.g. the input store is
 * already unreadable).
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "io/store.hh"
#include "seed/index_snapshot.hh"

using namespace genax;

namespace {

namespace fs = std::filesystem;

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

int g_violations = 0;

void
violation(const std::string &what)
{
    std::fprintf(stderr, "store_chaos: INVARIANT VIOLATED: %s\n",
                 what.c_str());
    ++g_violations;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    return static_cast<bool>(out);
}

/** Deterministic synthetic reference snapshot: same seed, same
 *  bytes, so sweeps and re-execs agree on the expected content. */
int
cmdBuild(const std::string &out, u64 seed)
{
    Rng rng(seed);
    Seq ref;
    ref.reserve(6000);
    for (size_t i = 0; i < 6000; ++i)
        ref.push_back(static_cast<Base>(rng.below(4)));
    const std::vector<SnapshotContig> contigs = {
        {"chrA", 0, 4000}, {"chrB", 4000, 2000}};
    SegmentConfig cfg;
    cfg.k = 10;
    cfg.segmentCount = 3;
    cfg.overlap = 64;
    if (const Status st =
            IndexSnapshot::build(out, ref, contigs, cfg);
        !st.ok()) {
        std::fprintf(stderr, "store_chaos: build: %s\n",
                     st.str().c_str());
        return kExitError;
    }
    std::fprintf(stderr, "store_chaos: built %s (seed %llu)\n",
                 out.c_str(),
                 static_cast<unsigned long long>(seed));
    return kExitOk;
}

/** Validate one mutated byte-string: write it to `scratch`, try to
 *  open it both mapped and owned, and demand a typed rejection (or,
 *  when `allow_benign`, a store identical in section content). */
void
expectRejected(const std::string &scratch, const std::string &bytes,
               const std::string &what, bool allow_benign,
               const StoreFile *pristine)
{
    if (!spit(scratch, bytes)) {
        violation(what + ": cannot write scratch file");
        return;
    }
    for (const bool prefer_mmap : {true, false}) {
        auto r = StoreFile::open(scratch, "", prefer_mmap);
        if (!r.ok()) {
            if (r.status().code() != StatusCode::InvalidInput &&
                r.status().code() != StatusCode::IoError)
                violation(what + ": untyped rejection: " +
                          r.status().str());
            continue;
        }
        if (!allow_benign || pristine == nullptr) {
            violation(what + ": corrupt store was accepted");
            continue;
        }
        // Accepted: every section must be byte-identical to the
        // pristine store (the flip landed in alignment padding).
        bool same = r->sections().size() ==
                    pristine->sections().size();
        for (size_t i = 0; same && i < r->sections().size(); ++i) {
            const auto &a = r->sections()[i];
            const auto &b = pristine->sections()[i];
            same = a.name == b.name && a.bytes == b.bytes &&
                   a.checksum == b.checksum;
        }
        if (!same)
            violation(what +
                      ": accepted store differs from pristine");
    }
}

int
cmdTruncate(const std::string &path)
{
    const std::string pristine_bytes = slurp(path);
    auto pristine = StoreFile::open(path, "");
    if (!pristine.ok()) {
        std::fprintf(stderr,
                     "store_chaos: truncate: input store is not "
                     "valid: %s\n",
                     pristine.status().str().c_str());
        return kExitError;
    }

    std::vector<size_t> cuts = {0, 1, sizeof(StoreHeader) - 1,
                                sizeof(StoreHeader),
                                pristine_bytes.size() - 1};
    for (const auto &s : pristine->sections()) {
        for (const long d : {-1L, 0L, 1L}) {
            cuts.push_back(static_cast<size_t>(
                static_cast<long>(s.offset) + d));
            cuts.push_back(static_cast<size_t>(
                static_cast<long>(s.offset + s.bytes) + d));
        }
    }
    const std::string scratch = path + ".chaos_cut";
    size_t tried = 0;
    for (const size_t cut : cuts) {
        if (cut >= pristine_bytes.size())
            continue;
        ++tried;
        expectRejected(scratch, pristine_bytes.substr(0, cut),
                       "truncate at " + std::to_string(cut),
                       /*allow_benign=*/false, nullptr);
    }
    fs::remove(scratch);
    std::fprintf(stderr,
                 "store_chaos: truncate: %zu cuts, %d violations\n",
                 tried, g_violations);
    return g_violations ? kExitViolation : kExitOk;
}

int
cmdBitflip(const std::string &path, u64 flips, u64 seed)
{
    const std::string pristine_bytes = slurp(path);
    auto pristine = StoreFile::open(path, "");
    if (!pristine.ok()) {
        std::fprintf(stderr,
                     "store_chaos: bitflip: input store is not "
                     "valid: %s\n",
                     pristine.status().str().c_str());
        return kExitError;
    }

    // Deliberately NOT common/rng.hh: Rng is seeded through the
    // same splitmix64 mixer the store checksum folds words with, and
    // a corruption harness must not derive its attack pattern from
    // the mixer family it is attacking. The Mersenne stream is
    // structurally unrelated and just as deterministic per seed.
    // genax-lint: allow(raw-rng): chaos sweep needs an RNG structurally independent of the splitmix64-seeded Rng the checksum under test shares its mixer with
    std::mt19937_64 rng(seed);
    const std::string scratch = path + ".chaos_flip";
    for (u64 i = 0; i < flips; ++i) {
        const size_t off =
            static_cast<size_t>(rng() % pristine_bytes.size());
        const u8 bit = static_cast<u8>(1u << (rng() % 8));
        std::string mutant = pristine_bytes;
        mutant[off] = static_cast<char>(
            static_cast<u8>(mutant[off]) ^ bit);
        expectRejected(scratch, mutant,
                       "bitflip " + std::to_string(i) + " at " +
                           std::to_string(off),
                       /*allow_benign=*/true, &*pristine);
    }
    fs::remove(scratch);
    std::fprintf(
        stderr, "store_chaos: bitflip: %llu flips, %d violations\n",
        static_cast<unsigned long long>(flips), g_violations);
    return g_violations ? kExitViolation : kExitOk;
}

/** Re-exec this binary to `build` with a kill plan armed, then check
 *  the crash left the target either untouched or fully valid. */
int
cmdKillsave(const char *self, const std::string &dir)
{
    fs::create_directories(dir);
    const std::string target = (fs::path(dir) / "snap.gxs").string();

    // Committed "old generation" the crashes must never damage.
    if (const int rc = cmdBuild(target, /*seed=*/1); rc != kExitOk)
        return rc;
    const std::string old_bytes = slurp(target);

    // Kill plans: every write boundary (the child writes the "new"
    // generation with a different seed), then both rename edges.
    // Rename-edge plans go first: the write sweep ends with an
    // early break once a plan outlives the write count.
    std::vector<std::string> plans = {"pre-rename", "post-rename"};
    for (int n = 1; n <= 64; ++n)
        plans.push_back("write:" + std::to_string(n));

    size_t ran = 0;
    for (const std::string &plan : plans) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::perror("store_chaos: fork");
            return kExitError;
        }
        if (pid == 0) {
            ::setenv("GENAX_STORE_KILL_AT", plan.c_str(), 1);
            ::execl(self, self, "build", target.c_str(), "2",
                    static_cast<char *>(nullptr));
            std::perror("store_chaos: execl");
            _exit(kExitError); // only _exit is safe post-fork
        }
        int wstatus = 0;
        if (::waitpid(pid, &wstatus, 0) != pid) {
            std::perror("store_chaos: waitpid");
            return kExitError;
        }
        ++ran;
        const bool killed =
            WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 137;
        const bool clean =
            WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kExitOk;
        if (!killed && !clean) {
            violation("killsave " + plan +
                      ": child neither died at the kill point nor "
                      "completed");
            continue;
        }

        // The crash invariant: old bytes intact, or a fully valid
        // (necessarily new) store.
        const std::string now = slurp(target);
        if (now != old_bytes) {
            auto reopened = StoreFile::open(target, "");
            if (!reopened.ok())
                violation("killsave " + plan +
                          ": target is neither the old file nor a "
                          "valid store: " +
                          reopened.status().str());
        }

        // Reset for the next plan: restore the old generation and
        // drop the crashed child's temp file.
        if (!spit(target, old_bytes)) {
            std::fprintf(stderr,
                         "store_chaos: cannot restore target\n");
            return kExitError;
        }
        for (const auto &e : fs::directory_iterator(dir)) {
            const std::string name = e.path().filename().string();
            if (name.find(".tmp.") != std::string::npos)
                fs::remove(e.path());
        }
        if (clean && plan.rfind("write:", 0) == 0)
            break; // the plan outlived the write count; sweep done
    }
    std::fprintf(stderr,
                 "store_chaos: killsave: %zu crash points, %d "
                 "violations\n",
                 ran, g_violations);
    return g_violations ? kExitViolation : kExitOk;
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: store_chaos build <out.gxs> [seed]\n"
        "       store_chaos truncate <file>\n"
        "       store_chaos bitflip <file> <n> <seed>\n"
        "       store_chaos killsave <dir>\n"
        "\n"
        "exit codes: 0 all invariants held; 1 violation; 2 usage;\n"
        "3 unrecoverable error\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return kExitUsage;
    }
    const std::string cmd = argv[1];
    if (cmd == "-h" || cmd == "--help") {
        usage(stdout);
        return kExitOk;
    }
    if (cmd == "build" && (argc == 3 || argc == 4))
        return cmdBuild(argv[2],
                        argc == 4
                            ? static_cast<u64>(std::atoll(argv[3]))
                            : 1);
    if (cmd == "truncate" && argc == 3)
        return cmdTruncate(argv[2]);
    if (cmd == "bitflip" && argc == 5)
        return cmdBitflip(argv[2],
                          static_cast<u64>(std::atoll(argv[3])),
                          static_cast<u64>(std::atoll(argv[4])));
    if (cmd == "killsave" && argc == 3)
        return cmdKillsave(argv[0], argv[2]);
    usage(stderr);
    return kExitUsage;
}
