/**
 * @file
 * genax_index — offline k-mer table construction.
 *
 *   genax_index --ref ref.fa --out index.gxi [--k 12]
 *
 * Builds the whole-reference k-mer index/position tables (the
 * offline step of Section V; GenAx proper builds one per genome
 * segment) and serializes them for later runs.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "genax/pipeline.hh"
#include "seed/kmer_index.hh"

using namespace genax;

int
main(int argc, char **argv)
{
    std::string ref_path, out_path;
    u32 k = 12;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--ref") {
            ref_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--k") {
            k = static_cast<u32>(std::atoi(next()));
        } else {
            std::fprintf(stderr,
                         "usage: %s --ref ref.fa --out index.gxi "
                         "[--k 12]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (ref_path.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "usage: %s --ref ref.fa --out index.gxi [--k 12]\n",
                     argv[0]);
        return 2;
    }

    const ContigMap contigs(readFastaFile(ref_path));
    const KmerIndex index(contigs.sequence(), k);
    index.saveFile(out_path);
    std::fprintf(stderr,
                 "indexed %llu bp at k=%u -> %s (index %.1f MB, "
                 "positions %.1f MB, max hit list %u)\n",
                 static_cast<unsigned long long>(
                     contigs.sequence().size()),
                 k, out_path.c_str(),
                 static_cast<double>(index.indexTableBytes()) / 1e6,
                 static_cast<double>(index.positionTableBytes()) / 1e6,
                 index.maxHitListSize());
    return 0;
}
