/**
 * @file
 * genax_index — offline k-mer table construction and snapshot
 * inspection.
 *
 *   genax_index --ref ref.fa --out index.gxi [--k 12]
 *               [--format dense|flat] [--segments 8] [--overlap 256]
 *   genax_index --verify FILE
 *
 * `--format dense` (default) builds the legacy whole-reference dense
 * k-mer table (the offline step of Section V). `--format flat` builds
 * a crash-safe "GXSNAP" store: the concatenated reference, the contig
 * map and one flat per-segment index, all checksummed and written
 * atomically — genax_align --index mmaps it and skips the per-run
 * index build entirely.
 *
 * `--verify` opens any store container, replays the full checksum
 * walk and prints a section report; it is the CI chaos harness's
 * corruption detector.
 *
 * Exit codes: 0 on success, 1 when the index was built but malformed
 * reference records had to be skipped, 2 on a usage error, 3 on an
 * unrecoverable error (including a corrupt --verify target).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "genax/pipeline.hh"
#include "io/store.hh"
#include "seed/index_snapshot.hh"
#include "seed/kmer_index.hh"

using namespace genax;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitPartial = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

void
printHelp(const char *prog, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s --ref ref.fa --out index.gxi [--k 12]\n"
        "          [--format dense|flat] [--segments 8] "
        "[--overlap 256]\n"
        "       %s --verify FILE\n"
        "\n"
        "Build and serialize k-mer index/position tables, or verify\n"
        "an existing on-disk store.\n"
        "\n"
        "options:\n"
        "  --ref FILE       reference FASTA (required unless "
        "--verify)\n"
        "  --out FILE       output index file (required unless "
        "--verify)\n"
        "  --k K            k-mer length, 1..13 (default 12)\n"
        "  --format FMT     dense: legacy whole-reference table\n"
        "                   flat: checksummed per-segment snapshot\n"
        "                   for genax_align --index (default dense)\n"
        "  --segments N     genome segments in a flat snapshot\n"
        "                   (default 8)\n"
        "  --overlap N      segment overlap in bases (default 256)\n"
        "  --verify FILE    open FILE as a store container, replay\n"
        "                   every checksum and print a section\n"
        "                   report; exit 3 if it fails validation\n"
        "  -h, --help       show this help and exit\n"
        "\n"
        "exit codes: 0 success; 1 malformed reference records were\n"
        "skipped; 2 usage error; 3 unrecoverable error\n",
        prog, prog);
}

[[noreturn]] void
usageError(const char *prog, const char *msg)
{
    std::fprintf(stderr, "%s: %s\n", prog, msg);
    printHelp(prog, stderr);
    std::exit(kExitUsage);
}

/** --verify: open any store kind, print the section table. The open
 *  itself replays header/table/section checksums, so reaching the
 *  report means the file is bit-for-bit intact. */
int
verifyStore(const std::string &path)
{
    auto store = StoreFile::open(path, /*expect_kind=*/"",
                                 /*prefer_mmap=*/true);
    if (!store.ok()) {
        std::fprintf(stderr, "genax_index: verify failed: %s\n",
                     store.status().str().c_str());
        return kExitError;
    }
    std::printf("%s: OK\n", path.c_str());
    std::printf("  kind %.*s v%u (container v%u), %llu bytes, %s\n",
                static_cast<int>(store->kind().size()),
                store->kind().data(), store->kindVersion(),
                store->version(),
                static_cast<unsigned long long>(store->fileBytes()),
                store->mapped() ? "mmap" : "owned read");
    std::printf("  %zu section%s:\n", store->sections().size(),
                store->sections().size() == 1 ? "" : "s");
    for (const auto &s : store->sections())
        std::printf("    %-16s offset %8llu  %10llu bytes  "
                    "checksum %016llx\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.bytes),
                    static_cast<unsigned long long>(s.checksum));
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ref_path, out_path, verify_path, format = "dense";
    u32 k = 12;
    u64 segments = 8;
    u64 overlap = 256;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(argv[0],
                           ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--ref") {
            ref_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--k") {
            k = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--format") {
            format = next();
        } else if (arg == "--segments") {
            segments = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--overlap") {
            overlap = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--verify") {
            verify_path = next();
        } else if (arg == "--help" || arg == "-h") {
            printHelp(argv[0], stdout);
            return kExitOk;
        } else {
            usageError(argv[0], ("unknown option: " + arg).c_str());
        }
    }
    if (!verify_path.empty())
        return verifyStore(verify_path);
    if (ref_path.empty() || out_path.empty())
        usageError(argv[0], "--ref and --out are required");
    if (k < 1 || k > 13)
        usageError(argv[0], "--k must be in 1..13");
    if (format != "dense" && format != "flat")
        usageError(argv[0], "--format must be dense or flat");
    if (segments < 1)
        usageError(argv[0], "--segments must be >= 1");

    ReaderStats ref_stats;
    const auto ref = readFastaFile(ref_path, {}, &ref_stats);
    if (!ref.ok()) {
        std::fprintf(stderr, "genax_index: %s\n",
                     ref.status().str().c_str());
        return kExitError;
    }
    if (ref->empty()) {
        std::fprintf(stderr,
                     "genax_index: reference has no usable contigs\n");
        return kExitError;
    }
    if (ref_stats.malformed > 0)
        std::fprintf(stderr,
                     "reference: skipped %llu malformed record%s\n",
                     static_cast<unsigned long long>(
                         ref_stats.malformed),
                     ref_stats.malformed == 1 ? "" : "s");

    const ContigMap contigs(*ref);
    if (format == "flat") {
        std::vector<SnapshotContig> snap_contigs;
        snap_contigs.reserve(contigs.contigs().size());
        for (const auto &c : contigs.contigs())
            snap_contigs.push_back({c.name, c.start, c.length});
        SegmentConfig cfg;
        cfg.k = k;
        cfg.segmentCount = segments;
        cfg.overlap = overlap;
        if (const Status st = IndexSnapshot::build(
                out_path, contigs.sequence(), snap_contigs, cfg);
            !st.ok()) {
            std::fprintf(stderr, "genax_index: %s\n",
                         st.str().c_str());
            return kExitError;
        }
        std::fprintf(stderr,
                     "snapshot: %llu bp, k=%u, %llu segment%s "
                     "(overlap %llu) -> %s\n",
                     static_cast<unsigned long long>(
                         contigs.sequence().size()),
                     k, static_cast<unsigned long long>(segments),
                     segments == 1 ? "" : "s",
                     static_cast<unsigned long long>(overlap),
                     out_path.c_str());
        return ref_stats.malformed > 0 ? kExitPartial : kExitOk;
    }

    const KmerIndex index(contigs.sequence(), k);
    if (const Status st = index.saveFile(out_path); !st.ok()) {
        std::fprintf(stderr, "genax_index: %s\n", st.str().c_str());
        return kExitError;
    }
    std::fprintf(stderr,
                 "indexed %llu bp at k=%u -> %s (index %.1f MB, "
                 "positions %.1f MB, max hit list %u)\n",
                 static_cast<unsigned long long>(
                     contigs.sequence().size()),
                 k, out_path.c_str(),
                 static_cast<double>(index.indexTableBytes()) / 1e6,
                 static_cast<double>(index.positionTableBytes()) / 1e6,
                 index.maxHitListSize());
    return ref_stats.malformed > 0 ? kExitPartial : kExitOk;
}
