/**
 * @file
 * genax_index — offline k-mer table construction.
 *
 *   genax_index --ref ref.fa --out index.gxi [--k 12]
 *
 * Builds the whole-reference k-mer index/position tables (the
 * offline step of Section V; GenAx proper builds one per genome
 * segment) and serializes them for later runs.
 *
 * Exit codes: 0 on success, 1 when the index was built but malformed
 * reference records had to be skipped, 2 on a usage error, 3 on an
 * unrecoverable error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "genax/pipeline.hh"
#include "seed/kmer_index.hh"

using namespace genax;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitPartial = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

void
printHelp(const char *prog, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s --ref ref.fa --out index.gxi [--k 12]\n"
        "\n"
        "Build and serialize the k-mer index/position tables.\n"
        "\n"
        "options:\n"
        "  --ref FILE   reference FASTA (required)\n"
        "  --out FILE   output index file (required)\n"
        "  --k K        k-mer length, 1..13 (default 12)\n"
        "  -h, --help   show this help and exit\n"
        "\n"
        "exit codes: 0 success; 1 malformed reference records were\n"
        "skipped; 2 usage error; 3 unrecoverable error\n",
        prog);
}

[[noreturn]] void
usageError(const char *prog, const char *msg)
{
    std::fprintf(stderr, "%s: %s\n", prog, msg);
    printHelp(prog, stderr);
    std::exit(kExitUsage);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ref_path, out_path;
    u32 k = 12;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError(argv[0],
                           ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--ref") {
            ref_path = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--k") {
            k = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--help" || arg == "-h") {
            printHelp(argv[0], stdout);
            return kExitOk;
        } else {
            usageError(argv[0], ("unknown option: " + arg).c_str());
        }
    }
    if (ref_path.empty() || out_path.empty())
        usageError(argv[0], "--ref and --out are required");
    if (k < 1 || k > 13)
        usageError(argv[0], "--k must be in 1..13");

    ReaderStats ref_stats;
    const auto ref = readFastaFile(ref_path, {}, &ref_stats);
    if (!ref.ok()) {
        std::fprintf(stderr, "genax_index: %s\n",
                     ref.status().str().c_str());
        return kExitError;
    }
    if (ref->empty()) {
        std::fprintf(stderr,
                     "genax_index: reference has no usable contigs\n");
        return kExitError;
    }
    if (ref_stats.malformed > 0)
        std::fprintf(stderr,
                     "reference: skipped %llu malformed record%s\n",
                     static_cast<unsigned long long>(
                         ref_stats.malformed),
                     ref_stats.malformed == 1 ? "" : "s");

    const ContigMap contigs(*ref);
    const KmerIndex index(contigs.sequence(), k);
    if (const Status st = index.saveFile(out_path); !st.ok()) {
        std::fprintf(stderr, "genax_index: %s\n", st.str().c_str());
        return kExitError;
    }
    std::fprintf(stderr,
                 "indexed %llu bp at k=%u -> %s (index %.1f MB, "
                 "positions %.1f MB, max hit list %u)\n",
                 static_cast<unsigned long long>(
                     contigs.sequence().size()),
                 k, out_path.c_str(),
                 static_cast<double>(index.indexTableBytes()) / 1e6,
                 static_cast<double>(index.positionTableBytes()) / 1e6,
                 index.maxHitListSize());
    return ref_stats.malformed > 0 ? kExitPartial : kExitOk;
}
