/**
 * @file
 * Microbenchmarks for the alignment substrate: full vs banded Gotoh,
 * score-only kernels, Myers bit-vector and the classic Levenshtein
 * automaton, on 101 bp Illumina-like pairs.
 */

#include <benchmark/benchmark.h>

#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "align/lev_automaton.hh"
#include "align/myers.hh"
#include "align/simd/batch_score.hh"
#include "align/simd/dispatch.hh"
#include "align/simd/myers_batch.hh"
#include "align/simd/striped.hh"
#include "align/wavefront.hh"
#include "align/wfa.hh"
#include "common/rng.hh"

namespace genax {
namespace {

struct Pair
{
    Seq ref;
    Seq qry;
};

Pair
makePair(u64 seed, size_t len, unsigned edits)
{
    Rng rng(seed);
    Pair p;
    p.ref.reserve(len);
    for (size_t i = 0; i < len; ++i)
        p.ref.push_back(static_cast<Base>(rng.below(4)));
    p.qry = p.ref;
    for (unsigned e = 0; e < edits; ++e) {
        const u64 pos = rng.below(p.qry.size());
        p.qry[pos] = static_cast<Base>((p.qry[pos] + 1 + rng.below(3)) & 3);
    }
    return p;
}

void
BM_GotohFullExtend(benchmark::State &state)
{
    const auto p = makePair(1, state.range(0), 3);
    const Scoring sc;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gotohAlign(p.ref, p.qry, sc, AlignMode::Extend));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GotohFullExtend)->Arg(101)->Arg(400);

void
BM_GotohBandedExtend(benchmark::State &state)
{
    const auto p = makePair(2, 101, 3);
    const Scoring sc;
    const u32 band = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gotohBanded(p.ref, p.qry, sc, AlignMode::Extend, band));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GotohBandedExtend)->Arg(16)->Arg(40);

void
BM_GotohBandedScoreOnly(benchmark::State &state)
{
    const auto p = makePair(3, 101, 3);
    const Scoring sc;
    const u32 band = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gotohBandedScoreOnly(p.ref, p.qry, sc, band));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GotohBandedScoreOnly)->Arg(16)->Arg(40);

void
BM_EditDistanceDp(benchmark::State &state)
{
    const auto p = makePair(4, state.range(0), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(editDistance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditDistanceDp)->Arg(101)->Arg(400);

void
BM_MyersBitVector(benchmark::State &state)
{
    const auto p = makePair(5, state.range(0), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(myersEditDistance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MyersBitVector)->Arg(101)->Arg(400);

void
BM_WavefrontEditDistance(benchmark::State &state)
{
    const auto p = makePair(7, state.range(0), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(wavefrontEditDistance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WavefrontEditDistance)->Arg(101)->Arg(400)->Arg(4000);

void
BM_WfaGlobalScore(benchmark::State &state)
{
    const auto p = makePair(8, state.range(0), 3);
    const Scoring sc;
    for (auto _ : state)
        benchmark::DoNotOptimize(wfaGlobalScore(p.ref, p.qry, sc));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WfaGlobalScore)->Arg(101)->Arg(400);

/**
 * A pinned batch of extension jobs shaped like the batched scoring
 * path's workload. The benchmark arg forces the dispatch tier
 * (KernelTier values: 0 scalar, 1 sse41, 2 avx2), so one run shows
 * the whole ladder side by side; unsupported tiers skip.
 */
struct Batch
{
    std::vector<Pair> pairs;
    std::vector<PackedSeq> windows;
    std::vector<simd::ExtendJob> ext;
    std::vector<simd::MyersJob> myers;
};

Batch
makeBatch(size_t jobs, size_t len, unsigned edits)
{
    Batch b;
    b.pairs.reserve(jobs);
    for (size_t j = 0; j < jobs; ++j)
        b.pairs.push_back(makePair(100 + j, len, edits));
    for (auto &p : b.pairs)
        b.windows.push_back(
            PackedSeq::packWindow(p.ref, 0, p.ref.size()));
    for (size_t j = 0; j < jobs; ++j) {
        b.ext.push_back({&b.windows[j], &b.pairs[j].qry});
        b.myers.push_back({&b.pairs[j].qry, &b.windows[j]});
    }
    return b;
}

bool
forceTierOrSkip(benchmark::State &state)
{
    const auto tier =
        static_cast<simd::KernelTier>(state.range(0));
    if (!simd::setKernelTier(tier).ok()) {
        state.SkipWithError("tier not supported on this host");
        return false;
    }
    return true;
}

void
BM_BatchExtendScore(benchmark::State &state)
{
    if (!forceTierOrSkip(state))
        return;
    const auto b = makeBatch(64, 101, 3);
    const Scoring sc;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simd::scoreCandidateBatch(b.ext, sc, 16));
    simd::clearKernelTierOverride();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<i64>(b.ext.size()));
}
BENCHMARK(BM_BatchExtendScore)->Arg(0)->Arg(1)->Arg(2);

void
BM_StripedLocalScore(benchmark::State &state)
{
    if (!forceTierOrSkip(state))
        return;
    const auto p = makePair(9, 400, 8);
    const Scoring sc;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simd::stripedLocalScore(p.ref, p.qry, sc));
    simd::clearKernelTierOverride();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripedLocalScore)->Arg(0)->Arg(1)->Arg(2);

void
BM_MyersBatch(benchmark::State &state)
{
    if (!forceTierOrSkip(state))
        return;
    const auto b = makeBatch(64, 256, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simd::myersEditDistanceBatch(b.myers));
    simd::clearKernelTierOverride();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<i64>(b.myers.size()));
}
BENCHMARK(BM_MyersBatch)->Arg(0)->Arg(1)->Arg(2);

void
BM_LevenshteinAutomaton(benchmark::State &state)
{
    const auto p = makePair(6, 101, 3);
    LevenshteinAutomaton la(p.ref, static_cast<u32>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(la.distanceTo(p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LevenshteinAutomaton)->Arg(4)->Arg(8);

} // namespace
} // namespace genax

BENCHMARK_MAIN();
