/**
 * @file
 * Microbenchmarks for the alignment substrate: full vs banded Gotoh,
 * score-only kernels, Myers bit-vector and the classic Levenshtein
 * automaton, on 101 bp Illumina-like pairs.
 */

#include <benchmark/benchmark.h>

#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "align/lev_automaton.hh"
#include "align/myers.hh"
#include "align/wavefront.hh"
#include "align/wfa.hh"
#include "common/rng.hh"

namespace genax {
namespace {

struct Pair
{
    Seq ref;
    Seq qry;
};

Pair
makePair(u64 seed, size_t len, unsigned edits)
{
    Rng rng(seed);
    Pair p;
    p.ref.reserve(len);
    for (size_t i = 0; i < len; ++i)
        p.ref.push_back(static_cast<Base>(rng.below(4)));
    p.qry = p.ref;
    for (unsigned e = 0; e < edits; ++e) {
        const u64 pos = rng.below(p.qry.size());
        p.qry[pos] = static_cast<Base>((p.qry[pos] + 1 + rng.below(3)) & 3);
    }
    return p;
}

void
BM_GotohFullExtend(benchmark::State &state)
{
    const auto p = makePair(1, state.range(0), 3);
    const Scoring sc;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gotohAlign(p.ref, p.qry, sc, AlignMode::Extend));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GotohFullExtend)->Arg(101)->Arg(400);

void
BM_GotohBandedExtend(benchmark::State &state)
{
    const auto p = makePair(2, 101, 3);
    const Scoring sc;
    const u32 band = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gotohBanded(p.ref, p.qry, sc, AlignMode::Extend, band));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GotohBandedExtend)->Arg(16)->Arg(40);

void
BM_GotohBandedScoreOnly(benchmark::State &state)
{
    const auto p = makePair(3, 101, 3);
    const Scoring sc;
    const u32 band = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gotohBandedScoreOnly(p.ref, p.qry, sc, band));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GotohBandedScoreOnly)->Arg(16)->Arg(40);

void
BM_EditDistanceDp(benchmark::State &state)
{
    const auto p = makePair(4, state.range(0), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(editDistance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditDistanceDp)->Arg(101)->Arg(400);

void
BM_MyersBitVector(benchmark::State &state)
{
    const auto p = makePair(5, state.range(0), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(myersEditDistance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MyersBitVector)->Arg(101)->Arg(400);

void
BM_WavefrontEditDistance(benchmark::State &state)
{
    const auto p = makePair(7, state.range(0), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(wavefrontEditDistance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WavefrontEditDistance)->Arg(101)->Arg(400)->Arg(4000);

void
BM_WfaGlobalScore(benchmark::State &state)
{
    const auto p = makePair(8, state.range(0), 3);
    const Scoring sc;
    for (auto _ : state)
        benchmark::DoNotOptimize(wfaGlobalScore(p.ref, p.qry, sc));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WfaGlobalScore)->Arg(101)->Arg(400);

void
BM_LevenshteinAutomaton(benchmark::State &state)
{
    const auto p = makePair(6, 101, 3);
    LevenshteinAutomaton la(p.ref, static_cast<u32>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(la.distanceTo(p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LevenshteinAutomaton)->Arg(4)->Arg(8);

} // namespace
} // namespace genax

BENCHMARK_MAIN();
