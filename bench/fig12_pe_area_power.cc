/**
 * @file
 * Figure 12 reproduction: per-PE area and power versus synthesis
 * frequency target (1-8 GHz) for the SillaX edit and traceback
 * machines, with the paper's highlighted optimal points.
 *
 * The 28 nm technology model is calibrated to the paper's published
 * synthesis results (see sillax/tech_model.hh); this bench sweeps it
 * and reports the same curves the figure plots (log-scale y in the
 * paper).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sillax/tech_model.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    header("fig12", "SillaX area and power for a single PE");
    note("area in um^2, power in uW, latency in ns; 28 nm model");
    note("paper highlights 2 GHz as the inflection/optimal point");

    struct Series
    {
        PeType type;
        const char *name;
    };
    const Series series[] = {
        {PeType::Edit, "edit_pe"},
        {PeType::Scoring, "scoring_pe"},
        {PeType::Traceback, "traceback_pe"},
    };

    for (const auto &s : series) {
        for (double f = 1.0; f <= 8.01; f += 1.0) {
            const char *paper_area = "";
            const char *paper_power = "";
            if (s.type == PeType::Edit && f == 2.0) {
                paper_area = "7.14 (0.012mm^2/1681 PEs)";
                paper_power = "27.96 (0.047W/1681 PEs)";
            }
            if (s.type == PeType::Edit && f == 5.0)
                paper_area = "9.7";
            if (s.type == PeType::Traceback && f == 2.0) {
                paper_area = "838.8 (1.41mm^2/1681 PEs)";
                paper_power = "916.1 (1.54W/1681 PEs)";
            }
            char x[16];
            std::snprintf(x, sizeof(x), "%.0fGHz", f);
            row("fig12", std::string(s.name) + ".area", x,
                TechModel::peAreaUm2(s.type, f), "um^2", paper_area);
            row("fig12", std::string(s.name) + ".power", x,
                TechModel::pePowerW(s.type, f) * 1e6, "uW", paper_power);
            row("fig12", std::string(s.name) + ".latency", x,
                TechModel::peLatencyNs(s.type, f), "ns",
                s.type == PeType::Edit && f == 2.0
                    ? "0.17"
                    : (s.type == PeType::Traceback && f == 2.0 ? "0.33"
                                                               : ""));
        }
    }

    header("fig12", "machine-level optimal design points (K=40)");
    row("fig12", "edit_machine.area", "2GHz",
        TechModel::machineAreaMm2(PeType::Edit, 40, 2.0), "mm^2",
        "0.012");
    row("fig12", "edit_machine.power", "2GHz",
        TechModel::machinePowerW(PeType::Edit, 40, 2.0), "W", "0.047");
    row("fig12", "traceback_machine.area", "2GHz",
        TechModel::machineAreaMm2(PeType::Traceback, 40, 2.0), "mm^2",
        "1.41");
    row("fig12", "traceback_machine.power", "2GHz",
        TechModel::machinePowerW(PeType::Traceback, 40, 2.0), "W",
        "1.54");
    row("fig12", "edit_machine.max_freq", "-",
        TechModel::maxFrequencyGhz(PeType::Edit), "GHz", "6");
    row("fig12", "edit_pe.gates", "-",
        TechModel::peGates(PeType::Edit), "gates", "13");
    return 0;
}
