/**
 * @file
 * System-level ablations for GenAx (DESIGN.md §5):
 *
 *  - segment-count sweep: on-chip SRAM footprint vs DRAM streaming
 *    time vs projected runtime at paper scale (why 512 segments),
 *  - exact-match fast path on/off,
 *  - seeding-lane lookup issue width.
 */

#include <cstdio>

#include "bench_util.hh"
#include "genax/system.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    const auto w = makeWorkload(1u << 20, 1500, 555);
    std::vector<Seq> reads;
    for (const auto &r : w.reads)
        reads.push_back(r.seq);

    // Baseline measured run used for all projections.
    GenAxConfig cfg;
    cfg.k = 12;
    cfg.editBound = 40;
    cfg.segmentCount = 8;
    cfg.segmentOverlap = 256;
    GenAxSystem sys(w.ref, cfg);
    sys.alignAll(reads);
    const GenAxPerf perf = sys.perf();

    header("ablation.segments", "segment count at paper scale "
                                "(3.08 Gbp, 787M reads)");
    for (u64 segs : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        // Seeding/extension work scales with segment count; tables
        // shrink with it.
        const auto proj = GenAxSystem::project(
            cfg, perf, u64{787'265'109}, 101, u64{3'080'000'000},
            segs);
        const u64 seg_len = u64{3'080'000'000} / segs;
        const double sram_mb =
            ((u64{1} << 24) * 3 + seg_len * 3 + seg_len / 4 +
             cfg.referenceCacheBytes + cfg.readBufferBytes) /
            1e6;
        char x[16];
        std::snprintf(x, sizeof(x), "%llu",
                      static_cast<unsigned long long>(segs));
        row("ablation.segments", "sram_needed", x, sram_mb, "MB",
            segs == 512 ? "68 (paper design point)" : "");
        row("ablation.segments", "projected_runtime", x,
            proj.totalSeconds, "s");
        row("ablation.segments", "projected_dram", x,
            proj.dramSeconds, "s");
    }
    note("fewer segments -> tables no longer fit on-chip SRAM; more "
         "segments -> every read is re-seeded more often");

    header("ablation.fastpath", "exact-match fast path (Section V "
                                "optimization 4)");
    for (bool on : {true, false}) {
        GenAxConfig c = cfg;
        c.seeding.exactMatchFastPath = on;
        GenAxSystem s(w.ref, c);
        s.alignAll(reads);
        const char *x = on ? "on" : "off";
        row("ablation.fastpath", "seeding_lookups_per_read", x,
            static_cast<double>(s.perf().seeding.indexLookups) /
                (2.0 * reads.size() * s.perf().segments),
            "lookups");
        row("ablation.fastpath", "extension_jobs", x,
            static_cast<double>(s.perf().extensionJobs), "jobs");
        row("ablation.fastpath", "seeding_seconds", x,
            s.perf().seedingSeconds * 1e3, "ms");
    }

    header("ablation.banks", "index-SRAM bank count (cycle-stepped "
                             "lane simulation)");
    for (u32 banks : {4u, 8u, 16u, 32u, 64u}) {
        GenAxConfig c = cfg;
        c.simulateSeedingLanes = true;
        c.seedingSramBanks = banks;
        GenAxSystem s(w.ref, c);
        s.alignAll(reads);
        char x[8];
        std::snprintf(x, sizeof(x), "%u", banks);
        row("ablation.banks", "seeding_time", x,
            s.perf().seedingSeconds * 1e3, "ms",
            banks == 32 ? "model default" : "");
    }

    header("ablation.issue_width", "seeding-lane SRAM issue width");
    for (u32 width : {1u, 2u, 4u, 8u}) {
        GenAxConfig c = cfg;
        c.seedingIssueWidth = width;
        GenAxSystem s(w.ref, c);
        s.alignAll(reads);
        const auto proj = GenAxSystem::project(
            c, s.perf(), u64{787'265'109}, 101, u64{3'080'000'000},
            512);
        char x[8];
        std::snprintf(x, sizeof(x), "%u", width);
        row("ablation.issue_width", "projected_KReads_per_s", x,
            proj.readsPerSecond / 1e3, "KReads/s",
            width == 4 ? "model default" : "");
    }
    return 0;
}
