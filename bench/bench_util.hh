/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints self-describing rows:
 *
 *   [figure] series=<name> x=<param> y=<value> unit=<unit> (paper=<ref>)
 *
 * so EXPERIMENTS.md can record paper-vs-measured pairs directly from
 * the bench output.
 */

#ifndef GENAX_BENCH_BENCH_UTIL_HH
#define GENAX_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <string>

#include "readsim/readsim.hh"
#include "readsim/refgen.hh"

namespace genax::bench {

/** One experiment data point. */
inline void
row(const std::string &figure, const std::string &series,
    const std::string &x, double y, const std::string &unit,
    const std::string &paper = "")
{
    std::printf("[%s] series=%-28s x=%-10s y=%14.4f unit=%-12s",
                figure.c_str(), series.c_str(), x.c_str(), y,
                unit.c_str());
    if (!paper.empty())
        std::printf(" paper=%s", paper.c_str());
    std::printf("\n");
}

inline void
header(const std::string &figure, const std::string &title)
{
    std::printf("\n=== %s — %s ===\n", figure.c_str(), title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("    %s\n", text.c_str());
}

/** Wall-clock seconds of fn(). */
template <typename Fn>
double
timeSeconds(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Standard bench workload: synthetic genome + Illumina-like reads. */
struct Workload
{
    Seq ref;
    std::vector<SimRead> reads;
};

inline Workload
makeWorkload(u64 genome_len, u64 num_reads, u64 seed = 1234,
             double base_error = 0.0025, double read_indel = 0.0001)
{
    Workload w;
    RefGenConfig rcfg;
    rcfg.length = genome_len;
    rcfg.seed = seed;
    w.ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.numReads = num_reads;
    rs.seed = seed + 1;
    rs.baseErrorRate = base_error;
    rs.readIndelRate = read_indel;
    w.reads = simulateReads(w.ref, rs);
    return w;
}

} // namespace genax::bench

#endif // GENAX_BENCH_BENCH_UTIL_HH
