/**
 * @file
 * Microbenchmarks for the seeding accelerator substrate: index
 * construction and per-read SMEM computation (exact and mutated
 * reads), plus the whole-read software aligner for context.
 */

#include <benchmark/benchmark.h>

#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "seed/fm_seeder.hh"
#include "seed/smem_engine.hh"
#include "swbase/bwamem_like.hh"

namespace genax {
namespace {

const Seq &
benchRef()
{
    static const Seq ref = [] {
        RefGenConfig cfg;
        cfg.length = 1 << 20;
        cfg.seed = 55;
        return generateReference(cfg);
    }();
    return ref;
}

const std::vector<SimRead> &
benchReads()
{
    static const std::vector<SimRead> reads = [] {
        ReadSimConfig rs;
        rs.numReads = 400;
        rs.seed = 56;
        rs.sampleReverse = false;
        return simulateReads(benchRef(), rs);
    }();
    return reads;
}

void
BM_KmerIndexBuild(benchmark::State &state)
{
    const u32 k = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        KmerIndex index(benchRef(), k);
        benchmark::DoNotOptimize(index.maxHitListSize());
    }
    state.SetBytesProcessed(state.iterations() * benchRef().size());
}
BENCHMARK(BM_KmerIndexBuild)->Arg(10)->Arg(12);

void
BM_SmemSeedPerRead(benchmark::State &state)
{
    static const KmerIndex index(benchRef(), 12);
    SmemEngine engine(index, {});
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.seed(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmemSeedPerRead);

void
BM_SmemSeedNoFastPath(benchmark::State &state)
{
    static const KmerIndex index(benchRef(), 12);
    SeedingConfig cfg;
    cfg.exactMatchFastPath = false;
    SmemEngine engine(index, cfg);
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.seed(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmemSeedNoFastPath);

void
BM_FmIndexBuild(benchmark::State &state)
{
    for (auto _ : state) {
        FmSeeder seeder(benchRef(), 12);
        benchmark::DoNotOptimize(seeder.footprintBytes());
    }
    state.SetBytesProcessed(state.iterations() * benchRef().size());
}
BENCHMARK(BM_FmIndexBuild);

void
BM_FmSeedPerRead(benchmark::State &state)
{
    static FmSeeder seeder(benchRef(), 12);
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(seeder.seed(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmSeedPerRead);

void
BM_BwaMemLikeAlignRead(benchmark::State &state)
{
    static const BwaMemLike aligner(benchRef(), [] {
        AlignerConfig cfg;
        cfg.k = 12;
        cfg.band = 16;
        return cfg;
    }());
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(aligner.alignRead(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BwaMemLikeAlignRead);

} // namespace
} // namespace genax

BENCHMARK_MAIN();
