/**
 * @file
 * Microbenchmarks for the seeding accelerator substrate: index
 * construction and per-read SMEM computation (exact and mutated
 * reads), plus the whole-read software aligner for context.
 */

#include <benchmark/benchmark.h>

#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "seed/fm_seeder.hh"
#include "seed/flat_kmer_index.hh"
#include "seed/kmer_index.hh"
#include "seed/smem_engine.hh"
#include "swbase/bwamem_like.hh"

namespace genax {
namespace {

const Seq &
benchRef()
{
    static const Seq ref = [] {
        RefGenConfig cfg;
        cfg.length = 1 << 20;
        cfg.seed = 55;
        return generateReference(cfg);
    }();
    return ref;
}

const std::vector<SimRead> &
benchReads()
{
    static const std::vector<SimRead> reads = [] {
        ReadSimConfig rs;
        rs.numReads = 400;
        rs.seed = 56;
        rs.sampleReverse = false;
        return simulateReads(benchRef(), rs);
    }();
    return reads;
}

void
BM_KmerIndexBuild(benchmark::State &state)
{
    const u32 k = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        KmerIndex index(benchRef(), k);
        benchmark::DoNotOptimize(index.maxHitListSize());
    }
    state.SetBytesProcessed(state.iterations() * benchRef().size());
}
BENCHMARK(BM_KmerIndexBuild)->Arg(10)->Arg(12);

/**
 * One lookup per read position, round-robin over the read set — the
 * access pattern the seeding loop generates. Reported per lookup, so
 * the `time` column is ns/lookup for the layout under test; the
 * `postings_bytes` counter is the average bytes a lookup touches
 * (index-structure lines plus the 4-byte postings it spans).
 */
template <typename Index>
void
runIndexLookups(benchmark::State &state, const Index &index,
                double struct_bytes_per_lookup)
{
    const auto &reads = benchReads();
    size_t r = 0, off = 0;
    u64 lookups = 0, postings = 0;
    for (auto _ : state) {
        const Seq &seq = reads[r].seq;
        const u64 key = index.packKmer(seq, off);
        const auto hits = index.lookup(key);
        benchmark::DoNotOptimize(hits.data());
        postings += hits.size();
        ++lookups;
        off += 12;
        if (off + 12 > seq.size()) {
            off = 0;
            r = (r + 1) % reads.size();
        }
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["postings_bytes"] = benchmark::Counter(
        struct_bytes_per_lookup +
            4.0 * static_cast<double>(postings) /
                static_cast<double>(std::max<u64>(1, lookups)),
        benchmark::Counter::kDefaults);
    state.counters["host_mb"] =
        static_cast<double>(index.hostBytes()) / 1e6;
}

void
BM_IndexLookupDense(benchmark::State &state)
{
    static const KmerIndex index(benchRef(), 12);
    // A CSR lookup reads offsets[kmer] and offsets[kmer + 1]: 8
    // bytes of index structure, nearly always one cold line out of
    // the 64 MB offsets array.
    runIndexLookups(state, index, 8.0);
}
BENCHMARK(BM_IndexLookupDense);

void
BM_IndexLookupFlat(benchmark::State &state)
{
    static const FlatKmerIndex index(benchRef(), 12);
    // Average probe-chain length over the keys this bench hits.
    const auto &reads = benchReads();
    u64 probes = 0, n = 0;
    for (const auto &r : reads) {
        for (size_t off = 0; off + 12 <= r.seq.size(); off += 12) {
            probes += index.probeLength(index.packKmer(r.seq, off));
            ++n;
        }
    }
    const double entry_bytes =
        16.0 * static_cast<double>(probes) /
        static_cast<double>(std::max<u64>(1, n));
    runIndexLookups(state, index, entry_bytes);
}
BENCHMARK(BM_IndexLookupFlat);

void
BM_FlatIndexBuild(benchmark::State &state)
{
    const u32 k = static_cast<u32>(state.range(0));
    for (auto _ : state) {
        FlatKmerIndex index(benchRef(), k);
        benchmark::DoNotOptimize(index.maxHitListSize());
    }
    state.SetBytesProcessed(state.iterations() * benchRef().size());
}
BENCHMARK(BM_FlatIndexBuild)->Arg(10)->Arg(12);

void
BM_SmemSeedPerRead(benchmark::State &state)
{
    static const SeedIndex index(benchRef(), 12);
    SmemEngine engine(index, {});
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.seed(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmemSeedPerRead);

void
BM_SmemSeedNoFastPath(benchmark::State &state)
{
    static const SeedIndex index(benchRef(), 12);
    SeedingConfig cfg;
    cfg.exactMatchFastPath = false;
    SmemEngine engine(index, cfg);
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.seed(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmemSeedNoFastPath);

void
BM_FmIndexBuild(benchmark::State &state)
{
    for (auto _ : state) {
        FmSeeder seeder(benchRef(), 12);
        benchmark::DoNotOptimize(seeder.footprintBytes());
    }
    state.SetBytesProcessed(state.iterations() * benchRef().size());
}
BENCHMARK(BM_FmIndexBuild);

void
BM_FmSeedPerRead(benchmark::State &state)
{
    static FmSeeder seeder(benchRef(), 12);
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(seeder.seed(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmSeedPerRead);

void
BM_BwaMemLikeAlignRead(benchmark::State &state)
{
    static const BwaMemLike aligner(benchRef(), [] {
        AlignerConfig cfg;
        cfg.k = 12;
        cfg.band = 16;
        return cfg;
    }());
    const auto &reads = benchReads();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(aligner.alignRead(reads[i].seq));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BwaMemLikeAlignRead);

} // namespace
} // namespace genax

BENCHMARK_MAIN();
