/**
 * @file
 * Figure 15 (and Table I) reproduction: end-to-end read-alignment
 * throughput and power of GenAx versus the BWA-MEM-class software
 * aligner, plus the paper-reported GPU (CUSHAW2) bar.
 *
 * Three results are reported:
 *   1. the measured host throughput of our BWA-MEM-like aligner,
 *   2. the modelled GenAx throughput on the same (scaled-down)
 *      workload,
 *   3. a projection of the GenAx model onto the paper's workload
 *      (787,265,109 x 101 bp reads against GRCh38, 512 segments) for
 *      direct comparison with the paper's 4,058 KReads/s.
 *
 * Also prints the alignment-concordance block mirroring the paper's
 * Section VIII-A validation against BWA-MEM.
 */

#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "genax/system.hh"
#include "swbase/bwamem_like.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    header("table1", "baseline system configuration");
    note("paper CPU: 2x Xeon E5-2697 v3, 28 cores / 56 threads, "
         "2.6 GHz, 120 GB DRAM (Table I)");
    note("paper GPU: NVIDIA TITAN Xp, 3840 CUDA cores (Table I)");
    row("table1", "host.hardware_threads", "-",
        std::max(1u, std::thread::hardware_concurrency()), "threads");

    // ------------------------------------------------------ workload
    const u64 genome_len = 1u << 20;
    const u64 num_reads = 3000;
    const auto w = makeWorkload(genome_len, num_reads, 2024);
    std::vector<Seq> reads;
    reads.reserve(w.reads.size());
    for (const auto &r : w.reads)
        reads.push_back(r.seq);

    // ------------------------------------------------- GenAx (model)
    GenAxConfig gcfg;
    gcfg.k = 12;
    gcfg.editBound = 40;
    gcfg.segmentCount = 8;
    gcfg.segmentOverlap = 256;
    GenAxSystem genax_sys(w.ref, gcfg);
    const auto hw_maps = genax_sys.alignAll(reads);
    const GenAxPerf &perf = genax_sys.perf();

    header("fig15a", "read alignment throughput (KReads/s)");
    row("fig15a", "genax.model.scaled_workload", "101bp",
        perf.readsPerSecond() / 1e3, "KReads/s");
    row("fig15a", "genax.exact_read_fraction", "-",
        static_cast<double>(perf.exactReads) / perf.reads, "fraction",
        "~0.75 (Section V)");

    // ---------------------------------------------- software aligner
    AlignerConfig scfg;
    scfg.k = 12;
    scfg.band = 40;
    scfg.threads = std::max(1u, std::thread::hardware_concurrency());
    BwaMemLike sw(w.ref, scfg);
    std::vector<Mapping> sw_maps;
    const double sw_sec =
        timeSeconds([&]() { sw_maps = sw.alignAll(reads); });
    const double sw_rps = num_reads / sw_sec;
    row("fig15a", "bwamem_like.host_measured", "101bp", sw_rps / 1e3,
        "KReads/s");
    const double sw_56t = sw_rps / scfg.threads * 56;
    row("fig15a", "bwamem_like.56thread_projection", "101bp",
        sw_56t / 1e3, "KReads/s", "~128 (4058/31.7)");

    // ------------------------------------------ paper-scale projection
    const auto proj = GenAxSystem::project(
        gcfg, perf, u64{787'265'109}, 101, u64{3'080'000'000}, 512);
    row("fig15a", "genax.projected_paper_workload", "101bp",
        proj.readsPerSecond / 1e3, "KReads/s", "4058");
    row("fig15a", "genax.projected_runtime", "787M reads",
        proj.totalSeconds, "s", "~194 (787M / 4058K)");
    row("fig15a", "genax.projected_seeding", "787M reads",
        proj.seedingSeconds, "s");
    row("fig15a", "genax.projected_extension", "787M reads",
        proj.extensionSeconds, "s");
    row("fig15a", "genax.projected_dram", "787M reads",
        proj.dramSeconds, "s", "~10% of runtime for read loading");
    // Two speedup comparisons, honestly labelled: our BWA-MEM-like
    // baseline skips much of BWA-MEM's work (chaining, rescoring,
    // mate rescue) and is several times faster per thread than the
    // real tool, which compresses the first ratio. The second uses
    // the paper machine's published BWA-MEM throughput.
    row("fig15a", "speedup.genax_vs_our_sw_56t", "-",
        proj.readsPerSecond / sw_56t, "x",
        "31.7 (but our baseline is lighter than real BWA-MEM)");
    row("fig15a", "speedup.genax_vs_paper_bwamem", "-",
        proj.readsPerSecond / 128e3, "x",
        "31.7 (vs the paper's ~128 KReads/s BWA-MEM)");
    row("fig15a", "speedup.genax_vs_cushaw2_gpu", "-", 72.4, "x",
        "72.4 (paper-reported)");

    // ------------------------------------------------------- power
    header("fig15b", "average power (W)");
    const auto ap = GenAxSystem::areaPower(
        gcfg, (u64{1} << 24) * 3, u64{6'100'000} * 3);
    row("fig15b", "genax.model", "-", ap.totalW, "W",
        "~12x below CPU");
    // The paper measures CPU package power with RAPL while running
    // BWA-MEM; ~145 W is the representative dual-socket figure that
    // yields its reported 12x reduction.
    row("fig15b", "cpu.rapl_measured_class", "-", 145.0, "W",
        "paper measures via RAPL");
    row("fig15b", "gpu.titan_xp_class", "-", 250.0, "W",
        "paper-reported class");
    row("fig15b", "power_reduction.genax_vs_cpu", "-", 145.0 / ap.totalW,
        "x", "12");
    // Energy efficiency combines both axes: throughput x power.
    const double genax_uj =
        ap.totalW / proj.readsPerSecond * 1e6; // uJ per read
    const double cpu_uj = 145.0 / 128e3 * 1e6; // paper BWA-MEM rate
    row("fig15b", "energy.genax", "-", genax_uj, "uJ/read");
    row("fig15b", "energy.cpu_paper_bwamem", "-", cpu_uj, "uJ/read");
    row("fig15b", "energy_efficiency.genax_vs_cpu", "-",
        cpu_uj / genax_uj, "x", "~380 (31.7 x 12)");

    // ------------------------------------------------ concordance
    header("validation", "GenAx vs software aligner concordance "
                         "(Section VIII-A)");
    u64 both = 0, same_score = 0, same_pos = 0;
    for (size_t i = 0; i < hw_maps.size(); ++i) {
        if (!hw_maps[i].mapped || !sw_maps[i].mapped)
            continue;
        ++both;
        same_score += hw_maps[i].score == sw_maps[i].score;
        same_pos += hw_maps[i].pos == sw_maps[i].pos &&
                    hw_maps[i].reverse == sw_maps[i].reverse;
    }
    row("validation", "score_concordance", "-",
        both ? static_cast<double>(same_score) / both : 0, "fraction",
        "1.0 (scores exactly equal)");
    row("validation", "alignment_concordance", "-",
        both ? static_cast<double>(same_pos) / both : 0, "fraction",
        "0.999977 (0.0023% variance)");
    row("validation", "rerun_fraction_of_jobs", "-",
        perf.lanes.jobs
            ? static_cast<double>(perf.lanes.jobsWithRerun) /
                  perf.lanes.jobs
            : 0,
        "fraction", "0.0759 of non-exact reads");
    return 0;
}
