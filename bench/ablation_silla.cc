/**
 * @file
 * Design-choice ablations for the Silla/SillaX core (DESIGN.md §5):
 *
 *  - collapsed 2-layer Silla vs the explicit 3D construction
 *    (state count, activations, software simulation cost),
 *  - Silla locality vs ULA fan-out across edit bounds,
 *  - SillaX in-place traceback vs a banded-SW accelerator's O(K*N)
 *    traceback store across read lengths (the Section VIII-C
 *    scaling argument, quantified).
 */

#include <cstdio>

#include "align/ula.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "silla/silla_edit.hh"
#include "sillax/sw_accel.hh"
#include "sillax/tech_model.hh"

using namespace genax;
using namespace genax::bench;

namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

Seq
mutate(Rng &rng, Seq s, unsigned edits)
{
    for (unsigned e = 0; e < edits && !s.empty(); ++e) {
        const u64 pos = rng.below(s.size());
        switch (rng.below(3)) {
          case 0:
            s[pos] = static_cast<Base>((s[pos] + 1 + rng.below(3)) & 3);
            break;
          case 1:
            s.insert(s.begin() + static_cast<i64>(pos),
                     static_cast<Base>(rng.below(4)));
            break;
          default:
            s.erase(s.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return s;
}

} // namespace

int
main()
{
    Rng rng(4242);

    header("ablation.collapse", "collapsed 3D Silla vs explicit 3D");
    for (u32 k : {4u, 8u, 12u, 16u}) {
        SillaEdit collapsed(k);
        Silla3D explicit3d(k);
        u64 act2 = 0, act3 = 0;
        for (int t = 0; t < 40; ++t) {
            const Seq a = randomSeq(rng, 101);
            const Seq b = mutate(rng, a, static_cast<unsigned>(k / 2));
            collapsed.distance(a, b);
            explicit3d.distance(a, b);
            act2 += collapsed.lastStats().totalActivations;
            act3 += explicit3d.lastStats().totalActivations;
        }
        char x[16];
        std::snprintf(x, sizeof(x), "K=%u", k);
        row("ablation.collapse", "collapsed.states", x,
            static_cast<double>(SillaStateCount::collapsed(k)),
            "states");
        row("ablation.collapse", "explicit3d.states", x,
            static_cast<double>(SillaStateCount::explicit3d(k)),
            "states");
        row("ablation.collapse", "state_reduction", x,
            static_cast<double>(SillaStateCount::explicit3d(k)) /
                SillaStateCount::collapsed(k),
            "x", "O(K^3) -> O(K^2), Section III-C");
        row("ablation.collapse", "collapsed.activations", x,
            static_cast<double>(act2) / 40, "per pair");
        row("ablation.collapse", "explicit3d.activations", x,
            static_cast<double>(act3) / 40, "per pair");
    }

    header("ablation.locality", "Silla locality vs ULA fan-out");
    for (u32 k : {2u, 4u, 8u}) {
        UniversalLevAutomaton ula(k);
        u64 edges = 0;
        u32 reach = 0;
        for (int t = 0; t < 20; ++t) {
            const Seq a = randomSeq(rng, 101);
            const Seq b = mutate(rng, a, static_cast<unsigned>(k));
            ula.distance(a, b);
            edges += ula.lastFanoutEdges();
            reach = std::max(reach, ula.lastMaxDeltaReach());
        }
        char x[16];
        std::snprintf(x, sizeof(x), "K=%u", k);
        row("ablation.locality", "ula.max_jump", x, reach, "positions",
            "O(K) fan-out, Section II");
        row("ablation.locality", "ula.edges_per_pair", x,
            static_cast<double>(edges) / 20, "edges");
        row("ablation.locality", "silla.max_jump", x, 1.0, "positions",
            "all communication is nearest-neighbour");
    }

    header("ablation.traceback", "SillaX O(K^2) vs banded-SW O(K*N) "
                                 "traceback storage (K=40, 2 GHz)");
    const u32 k = 40;
    const double sillax_area =
        TechModel::machineAreaMm2(PeType::Traceback, k, 2.0);
    BandedSwAccelModel sw(k);
    for (u64 n : {101u, 1000u, 10000u, 100000u, 1000000u}) {
        char x[16];
        std::snprintf(x, sizeof(x), "N=%llu",
                      static_cast<unsigned long long>(n));
        row("ablation.traceback", "sillax.area", x, sillax_area,
            "mm^2", "independent of N");
        row("ablation.traceback", "banded_sw.area", x,
            sw.areaMm2(n, 2.0), "mm^2", "grows with N");
        row("ablation.traceback", "banded_sw.tb_store", x,
            static_cast<double>(sw.tracebackBytes(n)) / 1e6, "MB");
        row("ablation.traceback", "cycles.sillax_vs_sw", x,
            static_cast<double>(n + 4 * k) / sw.alignCycles(n), "x",
            "both O(N) in time");
    }
    note("crossover: banded-SW area passes SillaX's once the "
         "traceback store exceeds ~1.4 mm^2 (reads of a few kbp) — "
         "the long-read argument of Sections II and VIII-C");
    return 0;
}
