/**
 * @file
 * Figure 13 reproduction (and the Section VIII-A broken-trail rate):
 * distribution of cycles spent re-executing the SillaX traceback
 * machine due to broken pointer trails.
 *
 * Workload: Illumina-like 101 bp reads extended at their true
 * positions with the paper's conservative K = 40, exact-matching
 * reads excluded (they never enter the traceback machine; the paper
 * measures 7.59% re-execution across the tested non-exact reads and
 * >60% of re-executions resolving within the first N cycles).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sillax/lane.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    header("fig13", "Silla traceback re-execution cycle distribution");

    // Illumina-like error profile: the paper quotes ~2% read error;
    // indel errors drive multi-PE paths and hence pointer-trail
    // breaks.
    const auto w = makeWorkload(400000, 4000, 77, 0.02, 0.004);
    const Scoring sc;
    SillaXLane lane(40, sc, 2.0);

    std::vector<Cycle> rerun_cycles;
    u64 jobs = 0, jobs_with_rerun = 0, exact_skipped = 0;

    for (const auto &read : w.reads) {
        const Seq oriented =
            read.reverse ? reverseComplement(read.seq) : read.seq;
        const u64 end =
            std::min<u64>(read.truthPos + read.seq.size() + 40,
                          w.ref.size());
        const Seq window(w.ref.begin() + static_cast<i64>(read.truthPos),
                         w.ref.begin() + static_cast<i64>(end));
        // Exact reads are resolved by the seeding fast path and
        // never reach the traceback machine.
        if (window.size() >= oriented.size() &&
            std::equal(oriented.begin(), oriented.end(),
                       window.begin())) {
            ++exact_skipped;
            continue;
        }
        const auto out = lane.extend(window, oriented);
        ++jobs;
        if (out.stats.reruns > 0) {
            ++jobs_with_rerun;
            rerun_cycles.push_back(out.stats.rerunCycles);
        }
    }

    row("fig13", "reads.total", "-", static_cast<double>(jobs + exact_skipped),
        "reads");
    row("fig13", "reads.non_exact", "-", static_cast<double>(jobs),
        "reads");
    row("fig13", "rerun.fraction_of_non_exact", "-",
        jobs ? static_cast<double>(jobs_with_rerun) / jobs : 0.0,
        "fraction", "0.0759");

    // Histogram over 100-cycle buckets up to 1600, as in the figure.
    const u64 bucket = 100, max_bucket = 1600;
    for (u64 lo = 0; lo < max_bucket; lo += bucket) {
        const u64 hi = lo + bucket;
        u64 n = 0;
        for (Cycle c : rerun_cycles)
            n += c >= lo && c < hi;
        char x[24];
        std::snprintf(x, sizeof(x), "%llu",
                      static_cast<unsigned long long>(hi));
        row("fig13", "rerun.cycle_histogram", x,
            rerun_cycles.empty()
                ? 0.0
                : static_cast<double>(n) / rerun_cycles.size(),
            "fraction");
    }
    u64 within_n = 0;
    for (Cycle c : rerun_cycles)
        within_n += c <= 101 + 40;
    row("fig13", "rerun.resolved_within_N_cycles", "-",
        rerun_cycles.empty()
            ? 0.0
            : static_cast<double>(within_n) / rerun_cycles.size(),
        "fraction", ">0.60");

    const LaneStats &st = lane.stats();
    row("fig13", "cycles.stream_per_job", "-",
        jobs ? static_cast<double>(st.streamCycles) / jobs : 0, "cycles");
    row("fig13", "cycles.rerun_per_job", "-",
        jobs ? static_cast<double>(st.rerunCycles) / jobs : 0, "cycles");
    note("re-execution has only a small impact on total traceback "
         "cycles, as in the paper");
    return 0;
}
