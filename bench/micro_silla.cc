/**
 * @file
 * Microbenchmarks for the Silla machines: software simulation cost
 * of the edit, scoring and traceback machines across edit bounds.
 * (Hardware throughput is the cycle model in fig14; this measures
 * the simulator itself.)
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "silla/silla_edit.hh"
#include "silla/silla_score.hh"
#include "silla/silla_traceback.hh"
#include "sillax/edit_machine.hh"

namespace genax {
namespace {

struct Pair
{
    Seq ref;
    Seq qry;
};

Pair
makePair(u64 seed, size_t len, unsigned edits)
{
    Rng rng(seed);
    Pair p;
    p.ref.reserve(len);
    for (size_t i = 0; i < len; ++i)
        p.ref.push_back(static_cast<Base>(rng.below(4)));
    p.qry = p.ref;
    for (unsigned e = 0; e < edits; ++e) {
        const u64 pos = rng.below(p.qry.size());
        p.qry[pos] = static_cast<Base>((p.qry[pos] + 1 + rng.below(3)) & 3);
    }
    return p;
}

void
BM_SillaEditDistance(benchmark::State &state)
{
    const auto p = makePair(10, 101, 3);
    SillaEdit silla(static_cast<u32>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(silla.distance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SillaEditDistance)->Arg(8)->Arg(16)->Arg(40);

void
BM_Silla3dEditDistance(benchmark::State &state)
{
    const auto p = makePair(11, 101, 3);
    Silla3D silla(static_cast<u32>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(silla.distance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Silla3dEditDistance)->Arg(8)->Arg(16);

void
BM_StructuralEditMachine(benchmark::State &state)
{
    const auto p = makePair(12, 101, 3);
    StructuralEditMachine hw(static_cast<u32>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hw.distance(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StructuralEditMachine)->Arg(8)->Arg(16);

void
BM_SillaScore(benchmark::State &state)
{
    const auto p = makePair(13, 101, 3);
    SillaScore machine(static_cast<u32>(state.range(0)), Scoring{});
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SillaScore)->Arg(16)->Arg(40);

void
BM_SillaTraceback(benchmark::State &state)
{
    const auto p = makePair(14, 101, 3);
    SillaTraceback machine(static_cast<u32>(state.range(0)), Scoring{});
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.align(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SillaTraceback)->Arg(16)->Arg(40);

// Event-vs-naive legs for the extension lane model: the two
// implementations are bit-identical by contract (pinned by
// test_model_equiv and re-checked here before timing), so the
// items/s ratio between the _Naive and _Event legs is exactly the
// host-side speedup the event path buys at a given edit load.
// Args are {edit bound K, edits injected into the 101bp pair}.

void
BM_SillaTracebackNaive(benchmark::State &state)
{
    const auto p = makePair(14, 101,
                            static_cast<unsigned>(state.range(1)));
    SillaTraceback machine(static_cast<u32>(state.range(0)), Scoring{});
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.alignNaive(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SillaTracebackNaive)
    ->Args({16, 3})
    ->Args({40, 3})
    ->Args({40, 12});

void
BM_SillaTracebackEvent(benchmark::State &state)
{
    const auto p = makePair(14, 101,
                            static_cast<unsigned>(state.range(1)));
    SillaTraceback machine(static_cast<u32>(state.range(0)), Scoring{});
    const auto naive = machine.alignNaive(p.ref, p.qry);
    const auto event = machine.alignEvent(p.ref, p.qry);
    if (naive.score != event.score ||
        naive.stats.total() != event.stats.total()) {
        state.SkipWithError("event path disagrees with naive oracle");
        return;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.alignEvent(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SillaTracebackEvent)
    ->Args({16, 3})
    ->Args({40, 3})
    ->Args({40, 12});

void
BM_EditMachineNaive(benchmark::State &state)
{
    const auto p = makePair(12, 101,
                            static_cast<unsigned>(state.range(1)));
    StructuralEditMachine hw(static_cast<u32>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hw.distanceNaive(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditMachineNaive)->Args({16, 3})->Args({40, 3});

void
BM_EditMachineEvent(benchmark::State &state)
{
    const auto p = makePair(12, 101,
                            static_cast<unsigned>(state.range(1)));
    StructuralEditMachine hw(static_cast<u32>(state.range(0)));
    if (hw.distanceNaive(p.ref, p.qry) !=
        hw.distanceEvent(p.ref, p.qry)) {
        state.SkipWithError("event path disagrees with naive oracle");
        return;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(hw.distanceEvent(p.ref, p.qry));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditMachineEvent)->Args({16, 3})->Args({40, 3});

} // namespace
} // namespace genax

BENCHMARK_MAIN();
