/**
 * @file
 * Table II reproduction (GenAx area breakdown) plus the Section
 * VIII-C banded-Smith-Waterman comparison and the composable-tile
 * configuration ablation of Section IV-D.
 */

#include <cstdio>

#include "bench_util.hh"
#include "genax/system.hh"
#include "silla/silla.hh"
#include "sillax/tech_model.hh"
#include "sillax/tile.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    header("table2", "GenAx area breakdown (28 nm, paper parameters)");
    GenAxConfig cfg; // defaults = paper architecture
    const u64 index_bytes = (u64{1} << 24) * 3;  // k=12 index, ~48 MB
    const u64 pos_bytes = u64{6'100'000} * 3;    // 6 Mbp segment
    const auto ap = GenAxSystem::areaPower(cfg, index_bytes, pos_bytes);

    row("table2", "seeding_lanes_x128", "area",
        ap.seedingLanesMm2, "mm^2", "4.224");
    row("table2", "sillax_lanes_x4", "area", ap.sillaxLanesMm2, "mm^2",
        "5.36");
    row("table2", "onchip_sram", "area", ap.sramMm2, "mm^2",
        "163.2 (68 MB)");
    row("table2", "total", "area", ap.totalMm2, "mm^2", "172.78");
    row("table2", "onchip_sram", "bytes",
        static_cast<double>(ap.sramBytes) / 1e6, "MB", "68");
    row("table2", "total", "power", ap.totalW, "W", "~12x below CPU");

    header("sec8c", "SillaX vs banded Smith-Waterman (Section VIII-C)");
    const double silla_pe = TechModel::peAreaUm2(PeType::Edit, 5.0);
    const double sw_pe = TechModel::bandedSwPeAreaUm2(5.0);
    row("sec8c", "sillax_edit_pe.area@5GHz", "-", silla_pe, "um^2",
        "9.7");
    row("sec8c", "banded_sw_pe.area@5GHz", "-", sw_pe, "um^2", "300");
    row("sec8c", "area_ratio", "-", sw_pe / silla_pe, "x", "30");

    header("sec8c", "state-count scaling (edit bound K, string N)");
    for (u32 k : {8u, 16u, 32u, 40u}) {
        char x[16];
        std::snprintf(x, sizeof(x), "K=%u", k);
        row("sec8c", "silla.collapsed_states", x,
            static_cast<double>(SillaStateCount::collapsed(k)),
            "states");
        row("sec8c", "silla3d.states", x,
            static_cast<double>(SillaStateCount::explicit3d(k)),
            "states");
        row("sec8c", "lev_automaton.states(N=101)", x,
            static_cast<double>(SillaStateCount::levenshtein(k, 101)),
            "states", "K*N-proportional");
        row("sec8c", "lev_automaton.states(N=10000)", x,
            static_cast<double>(
                SillaStateCount::levenshtein(k, 10000)),
            "states", "impractical for long reads");
    }

    header("sec4d", "composable SillaX configurations (2x2 tile array, "
                    "K_tile=40)");
    TileArray tiles(40, 2, 2);
    struct Cfg
    {
        const char *name;
        std::vector<u32> request;
    };
    const Cfg cfgs[] = {
        {"4x_independent_K40", {}},
        {"1x_composed_K81_plus_0", {2}},
    };
    for (const auto &c : cfgs) {
        if (!tiles.configure(c.request))
            continue;
        double engines = static_cast<double>(tiles.engines().size());
        u32 max_k = 0;
        for (const auto &e : tiles.engines())
            max_k = std::max(max_k, e.editBound);
        row("sec4d", std::string(c.name) + ".engines", "-", engines,
            "engines");
        row("sec4d", std::string(c.name) + ".max_edit_bound", "-",
            max_k, "K");
    }
    row("sec4d", "tile_array.area_with_mux", "-",
        tiles.areaMm2(PeType::Traceback, 2.0), "mm^2",
        "small MUX overhead over 4 machines");
    return 0;
}
