/**
 * @file
 * Figure 16 reproduction: seeding accelerator optimization ablations.
 *
 *  (a) Average number of hits handed to seed-extension per read for
 *      the raw hash baseline, + SMEM containment filtering, and
 *      + binary (stride-refined) extension.
 *  (b) CAM lookups per read for the base intersection datapath,
 *      + binary-search fallback, and + smallest-hit-set probing.
 *
 * The reference mixes random sequence with repeats and poly-A runs
 * so the pathological hit lists the paper calls out are present.
 */

#include <cstdio>

#include "bench_util.hh"
#include "seed/smem_engine.hh"

using namespace genax;
using namespace genax::bench;

namespace {

SeedingStats
runSeeding(const SeedIndex &index, const std::vector<SimRead> &reads,
           const SeedingConfig &cfg)
{
    SmemEngine engine(index, cfg);
    for (const auto &r : reads) {
        engine.seed(r.seq);
        engine.seed(reverseComplement(r.seq));
    }
    return engine.stats();
}

} // namespace

int
main()
{
    // Genome with repeats plus injected poly-A stretches.
    RefGenConfig rcfg;
    rcfg.length = 1u << 20;
    rcfg.seed = 31;
    rcfg.repeatFraction = 0.15;
    Seq ref = generateReference(rcfg);
    // Poly-A runs: the pathological k-mers the paper calls out
    // ("AA...A"), whose hit lists overflow the CAM by 30x+.
    for (u64 at = 60000; at + 2000 < ref.size(); at += 120000)
        std::fill(ref.begin() + static_cast<i64>(at),
                  ref.begin() + static_cast<i64>(at + 2000), kBaseA);

    ReadSimConfig rs;
    rs.numReads = 1500;
    rs.seed = 32;
    rs.sampleReverse = false;
    const auto reads = simulateReads(ref, rs);

    // The paper's Figure 16 regime is the whole human genome hashed
    // at k = 12: ~184 expected hits per k-mer (3.08 G / 4^12). A
    // 1 Mbp synthetic genome reaches the same multiplicity at k = 6.
    const SeedIndex index(ref, 6);

    // ------------------------------------------------- Figure 16a
    header("fig16a", "hits per read passed to seed extension");
    SeedingConfig hash;
    hash.smemFilter = false;
    hash.strideRefinement = false;
    hash.exactMatchFastPath = false;
    SeedingConfig smem = hash;
    smem.smemFilter = true;
    SeedingConfig binext = smem;
    binext.strideRefinement = true;

    const auto hash_stats = runSeeding(index, reads, hash);
    const auto smem_stats = runSeeding(index, reads, smem);
    const auto binext_stats = runSeeding(index, reads, binext);
    row("fig16a", "hash", "hits/read", hash_stats.avgHitsPerRead(),
        "hits", "orders of magnitude above SMEM");
    row("fig16a", "smem", "hits/read", smem_stats.avgHitsPerRead(),
        "hits");
    row("fig16a", "smem+binary_extension", "hits/read",
        binext_stats.avgHitsPerRead(), "hits",
        "lowest of the three series");

    // ------------------------------------------------- Figure 16b
    header("fig16b", "CAM lookups per read");
    SeedingConfig base;
    base.binarySearchFallback = false;
    base.probing = false;
    SeedingConfig binary = base;
    binary.binarySearchFallback = true;
    SeedingConfig probing = binary;
    probing.probing = true;

    const auto base_stats = runSeeding(index, reads, base);
    const auto binary_stats = runSeeding(index, reads, binary);
    const auto probing_stats = runSeeding(index, reads, probing);
    row("fig16b", "base", "lookups/read",
        base_stats.camLookupsPerRead(), "lookups");
    row("fig16b", "binary", "lookups/read",
        binary_stats.camLookupsPerRead(), "lookups",
        "large reduction vs base");
    row("fig16b", "binary+probing", "lookups/read",
        probing_stats.camLookupsPerRead(), "lookups",
        "further reduction via smallest-hit-set start");

    // CAM capacity ablation (DESIGN.md section 5). With the binary
    // fallback the cost is capacity-independent, so the sweep runs
    // the multi-pass baseline where capacity determines pass count.
    header("fig16b", "CAM capacity sweep (multi-pass baseline)");
    for (u32 cap : {128u, 256u, 512u, 1024u}) {
        SeedingConfig cfg = base;
        cfg.camSize = cap;
        const auto st = runSeeding(index, reads, cfg);
        char x[16];
        std::snprintf(x, sizeof(x), "%u", cap);
        row("fig16b", "cam_capacity", x, st.camLookupsPerRead(),
            "lookups", cap == 512 ? "paper's design point" : "");
    }
    return 0;
}
