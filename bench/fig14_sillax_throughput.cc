/**
 * @file
 * Figure 14 reproduction: raw seed-extension (alignment) throughput
 * of SillaX (4 lanes, cycle model at 2 GHz) against banded
 * Smith-Waterman software on the host CPU (the SeqAn stand-in) for
 * 101 bp Illumina-like reads.
 *
 * The GPU baseline (SW#) cannot be re-measured without a GPU; its
 * bar is reported via the paper's published ratio and labelled
 * paper-reported (see DESIGN.md substitution table).
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "align/gotoh.hh"
#include "bench_util.hh"
#include "sillax/lane.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    header("fig14", "SillaX alignment throughput (Khits/s), 101 bp");

    const auto w = makeWorkload(300000, 3000, 99, 0.01);
    const Scoring sc;
    const u32 k = 40; // the paper's conservative edit bound

    // Build the extension jobs once: read + reference window at the
    // true position.
    struct Job
    {
        Seq window;
        Seq read;
    };
    std::vector<Job> jobs;
    for (const auto &read : w.reads) {
        const u64 end = std::min<u64>(
            read.truthPos + read.seq.size() + k, w.ref.size());
        jobs.push_back(
            {Seq(w.ref.begin() + static_cast<i64>(read.truthPos),
                 w.ref.begin() + static_cast<i64>(end)),
             read.reverse ? reverseComplement(read.seq) : read.seq});
    }

    // ---------------- SillaX: cycle model, 4 lanes at 2 GHz
    SillaXLane lane(k, sc, 2.0);
    for (const auto &j : jobs)
        lane.extend(j.window, j.read);
    const double sillax_per_lane = lane.stats().jobsPerSecond(2.0);
    const double sillax = 4.0 * sillax_per_lane;
    row("fig14", "sillax.4lanes", "101bp", sillax / 1e3, "Khits/s");
    row("fig14", "sillax.cycles_per_hit", "101bp",
        lane.stats().cyclesPerJob(), "cycles");

    // ---------------- software banded SW (SeqAn stand-in), measured
    i64 sink = 0;
    const double sw_sec = timeSeconds([&]() {
        for (const auto &j : jobs) {
            const auto r =
                gotohBanded(j.window, j.read, sc, AlignMode::Extend, k);
            sink += r.score;
        }
    });
    if (sink == INT64_MIN)
        std::printf("unreachable\n"); // keep the loop observable
    const double sw_per_thread = jobs.size() / sw_sec;
    const unsigned host_threads =
        std::max(1u, std::thread::hardware_concurrency());
    // The paper's CPU baseline is a 28-core / 56-thread Xeon; scale
    // the single-thread rate to both the host and the paper machine.
    row("fig14", "banded_sw.1thread.host", "101bp",
        sw_per_thread / 1e3, "Khits/s");
    row("fig14", "banded_sw.host_all_threads", "101bp",
        sw_per_thread * host_threads / 1e3, "Khits/s");
    const double sw_28core = sw_per_thread * 28;
    row("fig14", "banded_sw.28core_projection", "101bp",
        sw_28core / 1e3, "Khits/s");

    // ---------------- comparisons
    row("fig14", "speedup.sillax_vs_sw_28core", "101bp",
        sillax / sw_28core, "x", "62.9 (vs SeqAn)");
    row("fig14", "speedup.sillax_vs_gpu", "101bp", 5287.0, "x",
        "5287 (paper-reported, SW# on TITAN Xp)");
    note("GPU bar is paper-reported: short reads underutilize GPUs "
         "due to synchronization overheads (Section VIII-A)");
    note("SillaX power 6.6 W / area 5.64 mm^2 for 4 lanes "
         "(paper-reported synthesis)");
    return 0;
}
