/**
 * @file
 * Microbenchmarks for the seeding lane-array cycle simulator: the
 * event-driven production path (simulateEvent) against the lock-step
 * reference (simulateNaive) on the same synthetic workload, so the
 * speedup that justifies the event path is a number this bench
 * regenerates. Both paths are bit-identical by contract
 * (tests/test_model_equiv.cc); the `model_cycles` counter lets a run
 * double as a quick cross-check.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "genax/seeding_sim.hh"

namespace genax {
namespace {

/**
 * A segment's worth of per-read lane work, shaped like what the
 * system model feeds the simulator: most reads do a handful of
 * index-table lookups plus a burst of CAM operations, a few do
 * nothing in this segment (no k-mer of theirs occurs here), and a
 * heavy tail does many lookups. Deterministic in `seed`.
 */
std::vector<LaneWork>
syntheticWork(u64 reads, u64 seed)
{
    Rng rng(seed);
    std::vector<LaneWork> work(reads);
    for (auto &w : work) {
        const u64 shape = rng.next() % 100;
        if (shape < 15) {
            w = {0, 0}; // read absent from this segment
        } else if (shape < 90) {
            w.indexLookups = 1 + rng.next() % 90;
            w.camOps = rng.next() % 120;
        } else {
            w.indexLookups = 200 + rng.next() % 800; // heavy tail
            w.camOps = rng.next() % 300;
        }
    }
    return work;
}

template <SeedingSimResult (SeedingLaneSim::*Simulate)(
    const std::vector<LaneWork> &) const>
void
runSim(benchmark::State &state)
{
    SeedingSimConfig cfg;
    cfg.lanes = 128;
    cfg.banks = 32;
    cfg.issueWidth = 4;
    cfg.seed = 1;
    const SeedingLaneSim sim(cfg);
    const auto work =
        syntheticWork(static_cast<u64>(state.range(0)), 77);

    Cycle cycles = 0;
    for (auto _ : state) {
        const auto res = (sim.*Simulate)(work);
        benchmark::DoNotOptimize(res.grants);
        cycles = res.cycles;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<i64>(work.size()));
    // Modelled cycles retired per host second — the figure of merit
    // for a cycle simulator — plus the cycle count itself so the two
    // variants can be eyeballed for agreement from the bench output.
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles) * state.iterations(),
        benchmark::Counter::kIsRate);
    state.counters["model_cycles"] =
        static_cast<double>(cycles);
}

void
BM_SeedSimEvent(benchmark::State &state)
{
    runSim<&SeedingLaneSim::simulateEvent>(state);
}
BENCHMARK(BM_SeedSimEvent)->Arg(64)->Arg(600)->Arg(4096);

void
BM_SeedSimNaive(benchmark::State &state)
{
    runSim<&SeedingLaneSim::simulateNaive>(state);
}
BENCHMARK(BM_SeedSimNaive)->Arg(64)->Arg(600)->Arg(4096);

/**
 * Bank-count sensitivity on the event path — the ablation axis the
 * simulator exists to explore (conflicts vanish as banks grow).
 */
void
BM_SeedSimEventBanks(benchmark::State &state)
{
    SeedingSimConfig cfg;
    cfg.banks = static_cast<u32>(state.range(0));
    cfg.seed = 1;
    const SeedingLaneSim sim(cfg);
    const auto work = syntheticWork(600, 77);

    u64 conflicts = 0;
    for (auto _ : state) {
        const auto res = sim.simulateEvent(work);
        benchmark::DoNotOptimize(res.cycles);
        conflicts = res.bankConflicts;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<i64>(work.size()));
    state.counters["bank_conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_SeedSimEventBanks)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

} // namespace
} // namespace genax

BENCHMARK_MAIN();
