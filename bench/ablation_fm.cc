/**
 * @file
 * Seeding-substrate ablation: FM-index (BWA-MEM's, Section IX prior
 * art) vs GenAx's segmented k-mer hash tables.
 *
 * Both produce identical SMEMs (cross-checked in the tests); what
 * differs is the memory behaviour. The FM-index performs a long
 * serialized chain of rank() lookups whose addresses depend on the
 * previous lookup — un-pipelinable random accesses — plus LF walks
 * for every located hit, while the hash engine issues independent
 * k-mer lookups that the banked SRAM can stream. This bench
 * quantifies that argument, plus the footprint trade-off that makes
 * hash tables segmentable into on-chip SRAM.
 */

#include <cstdio>

#include "bench_util.hh"
#include "seed/fm_seeder.hh"
#include "seed/kmer_index.hh"
#include "seed/minimizer.hh"
#include "seed/smem_engine.hh"

using namespace genax;
using namespace genax::bench;

int
main()
{
    const auto w = makeWorkload(1u << 20, 800, 4711);
    const u32 k = 12;

    header("ablation.fm", "FM-index vs segmented hash seeding");
    const double build_hash =
        timeSeconds([&]() { SeedIndex tmp(w.ref, k); });
    SeedIndex kindex(w.ref, k);
    const double build_fm = timeSeconds([&]() { FmSeeder tmp(w.ref, k); });
    FmSeeder fm(w.ref, k);
    row("ablation.fm", "build_time.hash", "-", build_hash, "s");
    row("ablation.fm", "build_time.fm", "-", build_fm, "s");

    SeedingConfig cfg;
    cfg.exactMatchFastPath = false; // identical work on both sides
    SmemEngine hash_engine(kindex, cfg);

    u64 fm_smems = 0, hash_smems = 0;
    const double t_fm = timeSeconds([&]() {
        for (const auto &r : w.reads)
            fm_smems += fm.seed(r.seq).size();
    });
    const double t_hash = timeSeconds([&]() {
        for (const auto &r : w.reads)
            hash_smems += hash_engine.seed(r.seq).size();
    });
    row("ablation.fm", "smems.fm", "per run", fm_smems, "seeds");
    row("ablation.fm", "smems.hash", "per run", hash_smems, "seeds",
        "identical outputs (tested)");

    const double n = static_cast<double>(w.reads.size());
    row("ablation.fm", "fm.rank_calls", "per read",
        static_cast<double>(fm.stats().rankCalls) / n, "accesses",
        "serialized, address-dependent chain");
    row("ablation.fm", "fm.locate_steps", "per read",
        static_cast<double>(fm.stats().locateSteps) / n, "accesses");
    row("ablation.fm", "hash.index_lookups", "per read",
        static_cast<double>(hash_engine.stats().indexLookups) / n,
        "accesses", "independent, SRAM-streamable");
    row("ablation.fm", "access_ratio.fm_vs_hash", "per read",
        static_cast<double>(fm.stats().rankCalls +
                            fm.stats().locateSteps) /
            static_cast<double>(hash_engine.stats().indexLookups),
        "x", "the Section V/IX locality argument");
    row("ablation.fm", "software_time.fm", "per run", t_fm, "s");
    row("ablation.fm", "software_time.hash", "per run", t_hash, "s");

    // ---------------- sparse minimizer sketch for contrast
    header("ablation.minimizer", "sparse minimizer sketch vs dense "
                                 "tables (k=13, w=10)");
    MinimizerIndex mindex(w.ref, 13, 10);
    u64 min_seeds = 0, min_hits = 0;
    const double t_min = timeSeconds([&]() {
        for (const auto &r : w.reads) {
            for (const auto &s : mindex.seed(r.seq)) {
                ++min_seeds;
                min_hits += s.positions.size();
            }
        }
    });
    row("ablation.minimizer", "density", "-", mindex.density(),
        "fraction", "~2/(w+1)");
    row("ablation.minimizer", "footprint", "-",
        static_cast<double>(mindex.footprintBytes()) / 1e6, "MB");
    row("ablation.minimizer", "seeds", "per read",
        static_cast<double>(min_seeds) / n, "seeds");
    row("ablation.minimizer", "hits", "per read",
        static_cast<double>(min_hits) / n, "hits");
    row("ablation.minimizer", "software_time", "per run", t_min, "s");
    note("sketches shrink the index but give fixed-length, non-"
         "maximal seeds; GenAx's dense segmented tables keep the "
         "SMEM guarantee the paper requires for BWA-MEM parity");

    header("ablation.fm", "memory footprint (this 1 Mbp genome)");
    row("ablation.fm", "fm.footprint", "-",
        static_cast<double>(fm.footprintBytes()) / 1e6, "MB",
        "monolithic: cannot be segmented cheaply");
    row("ablation.fm", "hash.index_table", "-",
        static_cast<double>(kindex.indexTableBytes()) / 1e6, "MB",
        "fixed 4^k entries per segment");
    row("ablation.fm", "hash.position_table", "-",
        static_cast<double>(kindex.positionTableBytes()) / 1e6, "MB",
        "scales with segment length -> fits SRAM");
    return 0;
}
