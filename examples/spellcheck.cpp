/**
 * @file
 * Silla beyond genomics: automatic spell correction.
 *
 *   $ ./spellcheck [word ...]
 *
 * Section VIII-C notes that Silla "can also be easily extended to
 * solve other important problems such as ... automatic spell
 * correction". This example demonstrates the property that makes
 * that practical: string independence. ONE SillaEdit automaton
 * instance scores a query against every dictionary word — no
 * per-word automaton construction, unlike the classic Levenshtein
 * automaton, which must be rebuilt (reprogrammed, in hardware) for
 * each stored pattern.
 *
 * The alphabet is arbitrary bytes: the automaton only ever compares
 * symbols for equality.
 */

#include <iostream>
#include <string>
#include <vector>

#include "align/lev_automaton.hh"
#include "silla/silla_edit.hh"

using namespace genax;

namespace {

Seq
bytes(const std::string &s)
{
    return Seq(s.begin(), s.end());
}

const std::vector<std::string> &
dictionary()
{
    static const std::vector<std::string> words = {
        "genome",     "sequence",  "alignment", "automaton",
        "accelerator", "insertion", "deletion",  "substitution",
        "reference",  "traceback", "distance",  "hardware",
        "software",   "pipeline",  "segment",   "throughput",
        "levenshtein", "systolic",  "comparator", "seeding",
    };
    return words;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> queries;
    for (int i = 1; i < argc; ++i)
        queries.emplace_back(argv[i]);
    if (queries.empty()) {
        queries = {"genme", "alignmnet", "hardwear", "travceback",
                   "leventshein", "throughputt", "sequence"};
    }

    constexpr u32 kMaxEdits = 3;
    SillaEdit silla(kMaxEdits); // one automaton for everything

    for (const auto &q : queries) {
        const Seq query = bytes(q);
        std::string best;
        u32 best_dist = kMaxEdits + 1;
        for (const auto &word : dictionary()) {
            const auto d = silla.distance(bytes(word), query);
            if (d && *d < best_dist) {
                best_dist = *d;
                best = word;
            }
        }
        if (best_dist == 0) {
            std::cout << q << ": correct\n";
        } else if (!best.empty()) {
            std::cout << q << " -> " << best << " (" << best_dist
                      << " edit" << (best_dist > 1 ? "s" : "")
                      << ")\n";
        } else {
            std::cout << q << ": no suggestion within " << kMaxEdits
                      << " edits\n";
        }
    }

    // Contrast with the classic Levenshtein automaton: it is bound
    // to one pattern, so checking D dictionary words means building
    // D automata with K*N states each.
    u64 la_states = 0;
    for (const auto &word : dictionary())
        la_states +=
            LevenshteinAutomaton(bytes(word), kMaxEdits).stateCount();
    std::cout << "\nstate count to cover the dictionary: Silla "
              << silla.stateCount() << " (one machine), classic LA "
              << la_states << " (" << dictionary().size()
              << " machines)\n";
    return 0;
}
