/**
 * @file
 * Full pipeline demo: the paper's evaluation in miniature.
 *
 *   $ ./aligner_demo [genome_bp] [num_reads] [seed]
 *
 * Simulates a genome + read set, aligns with both the BWA-MEM-like
 * software baseline and the GenAx accelerator model, writes both SAM
 * outputs to files, and reports accuracy against ground truth plus
 * hardware/software concordance (the Section VIII-A validation) and
 * the accelerator's modelled throughput, area and power.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "genax/system.hh"
#include "io/sam.hh"
#include "readsim/eval.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "swbase/bwamem_like.hh"

using namespace genax;

namespace {

void
writeSam(const std::string &path, const Seq &ref,
         const std::vector<SimRead> &sim,
         const std::vector<Mapping> &maps)
{
    std::ofstream out(path);
    SamWriter sam(out, {{"synthetic", ref.size()}});
    for (size_t i = 0; i < maps.size(); ++i) {
        const Mapping &m = maps[i];
        SamRecord rec;
        rec.qname = sim[i].name;
        if (!m.mapped) {
            rec.flag = kSamUnmapped;
        } else {
            rec.flag = m.reverse ? kSamReverse : 0;
            rec.rname = "synthetic";
            rec.pos = m.pos;
            rec.mapq = m.mapq;
            rec.cigar = m.cigar.strSamM();
            rec.score = m.score;
            rec.editDistance =
                static_cast<i32>(m.cigar.editDistance());
        }
        rec.seq = decode(m.reverse ? reverseComplement(sim[i].seq)
                                   : sim[i].seq);
        sam.write(rec);
    }
    std::cout << "wrote " << path << " (" << maps.size()
              << " records)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const u64 genome_bp = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 500000;
    const u64 num_reads = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : 1000;
    const u64 seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    std::cout << "genome " << genome_bp << " bp, " << num_reads
              << " reads, seed " << seed << "\n\n";

    RefGenConfig rcfg;
    rcfg.length = genome_bp;
    rcfg.seed = seed;
    const Seq ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.numReads = num_reads;
    rs.seed = seed + 1;
    const auto sim = simulateReads(ref, rs);
    std::vector<Seq> reads;
    for (const auto &r : sim)
        reads.push_back(r.seq);

    // ------------------------------------------- software baseline
    AlignerConfig scfg;
    scfg.k = 12;
    scfg.band = 40;
    BwaMemLike sw(ref, scfg);
    const auto sw_maps = sw.alignAll(reads);
    const auto sw_acc = evaluateAccuracy(sim, sw_maps);
    std::cout << "software (BWA-MEM-like):  mapped "
              << sw_acc.mapped << "/" << num_reads << ", correct "
              << sw_acc.correct << "\n";

    // --------------------------------------------- GenAx hardware
    GenAxConfig gcfg;
    gcfg.k = 12;
    gcfg.editBound = 40;
    gcfg.segmentCount = 8;
    gcfg.segmentOverlap = 256;
    GenAxSystem genax(ref, gcfg);
    const auto hw_maps = genax.alignAll(reads);
    const auto hw_acc = evaluateAccuracy(sim, hw_maps);
    std::cout << "GenAx accelerator model:  mapped "
              << hw_acc.mapped << "/" << num_reads << ", correct "
              << hw_acc.correct << "\n\n";

    // ----------------------------------------------- concordance
    const auto conc = evaluateConcordance(hw_maps, sw_maps);
    std::cout << "concordance on " << conc.bothMapped
              << " co-mapped reads: " << conc.sameScore
              << " identical scores, " << conc.samePlacement
              << " identical placements\n\n";

    // ------------------------------------------------ perf report
    const GenAxPerf &perf = genax.perf();
    std::cout << "GenAx model: " << perf.exactReads
              << " exact-path reads, " << perf.extensionJobs
              << " extension jobs, "
              << perf.lanes.jobsWithRerun
              << " jobs with traceback re-execution\n"
              << "  seeding " << perf.seedingSeconds * 1e3
              << " ms, extension " << perf.extensionSeconds * 1e3
              << " ms, DRAM " << perf.dramSeconds * 1e3
              << " ms -> total " << perf.totalSeconds * 1e3 << " ms ("
              << perf.readsPerSecond() / 1e3 << " KReads/s)\n";

    const auto ap = genax.areaPower();
    std::cout << "  area " << ap.totalMm2 << " mm^2 (SRAM "
              << ap.sramBytes / 1e6 << " MB), power " << ap.totalW
              << " W\n\n";

    writeSam("genax_demo.sam", ref, sim, hw_maps);
    writeSam("swbase_demo.sam", ref, sim, sw_maps);
    return 0;
}
