/**
 * @file
 * Downstream demo: calling SNPs from GenAx alignments.
 *
 *   $ ./variant_calling [genome_bp] [coverage] [seed]
 *
 * The paper's introduction frames read alignment as the path to "the
 * end goal ... to determine the variants in the new genome". This
 * example closes that loop: simulate a donor genome with known SNPs,
 * sequence it at the given coverage, align the reads with the GenAx
 * accelerator model, build a pileup, call SNPs by majority vote, and
 * score the calls against the planted truth.
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "genax/system.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"

using namespace genax;

int
main(int argc, char **argv)
{
    const u64 genome_bp = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 300000;
    const u64 coverage = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 30;
    const u64 seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

    // ----------------------------------------------- simulate truth
    RefGenConfig rcfg;
    rcfg.length = genome_bp;
    rcfg.seed = seed;
    const Seq ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.seed = seed + 1;
    rs.donorIndelRate = 0; // SNP calling demo
    rs.numReads = genome_bp * coverage / rs.readLen;
    Rng rng(rs.seed);
    const Donor donor = buildDonor(ref, rs, rng);
    const auto sim = simulateReads(donor, rs, rng);

    // Truth set: positions where the donor differs from the
    // reference (SNPs only, since donor indels are disabled).
    std::map<Pos, Base> truth;
    for (size_t i = 0; i < donor.seq.size(); ++i) {
        const Pos r = donor.donorToRef[i];
        if (donor.seq[i] != ref[r])
            truth[r] = donor.seq[i];
    }
    std::cout << "genome " << genome_bp << " bp, " << sim.size()
              << " reads (" << coverage << "x), " << truth.size()
              << " true SNPs\n";

    // ------------------------------------------------------- align
    GenAxConfig cfg;
    cfg.k = 12;
    cfg.editBound = 20;
    cfg.segmentCount = 8;
    cfg.segmentOverlap = 256;
    GenAxSystem genax(ref, cfg);
    std::vector<Seq> reads;
    for (const auto &r : sim)
        reads.push_back(r.seq);
    const auto maps = genax.alignAll(reads);

    // ------------------------------------------------------ pileup
    // counts[pos][base]: aligned-base votes per reference position.
    std::vector<std::array<u32, 4>> counts(ref.size(), {0, 0, 0, 0});
    u64 used = 0;
    for (size_t i = 0; i < maps.size(); ++i) {
        const Mapping &m = maps[i];
        if (!m.mapped || m.mapq < 20)
            continue;
        ++used;
        const Seq oriented =
            m.reverse ? reverseComplement(reads[i]) : reads[i];
        u64 r = m.pos, q = 0;
        for (const auto &e : m.cigar.elems()) {
            switch (e.op) {
              case CigarOp::Match:
              case CigarOp::Mismatch:
                for (u32 x = 0; x < e.len; ++x, ++r, ++q)
                    if (r < ref.size())
                        ++counts[r][oriented[q] & 3];
                break;
              case CigarOp::Ins:
              case CigarOp::SoftClip:
                q += e.len;
                break;
              case CigarOp::Del:
                r += e.len;
                break;
            }
        }
    }

    // -------------------------------------------------- call SNPs
    std::map<Pos, Base> calls;
    for (Pos p = 0; p < ref.size(); ++p) {
        u32 depth = 0;
        for (u32 b = 0; b < 4; ++b)
            depth += counts[p][b];
        if (depth < coverage / 3)
            continue; // under-covered
        u32 best = 0;
        for (u32 b = 1; b < 4; ++b)
            if (counts[p][b] > counts[p][best])
                best = b;
        if (best != (ref[p] & 3) &&
            counts[p][best] * 10 >= depth * 8) { // 80% majority
            calls[p] = static_cast<Base>(best);
        }
    }

    // ------------------------------------------------------ score
    u64 tp = 0, fp = 0;
    for (const auto &[pos, base] : calls) {
        const auto it = truth.find(pos);
        if (it != truth.end() && it->second == base)
            ++tp;
        else
            ++fp;
    }
    const u64 fn = truth.size() - tp;
    const double precision =
        calls.empty() ? 1.0 : static_cast<double>(tp) / calls.size();
    const double recall =
        truth.empty() ? 1.0
                      : static_cast<double>(tp) / truth.size();

    std::cout << "used " << used << " confidently-mapped reads\n"
              << "called " << calls.size() << " SNPs: " << tp
              << " true, " << fp << " false, " << fn << " missed\n"
              << "precision " << precision << ", recall " << recall
              << "\n";
    return precision > 0.95 && recall > 0.9 ? 0 : 1;
}
