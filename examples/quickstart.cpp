/**
 * @file
 * Quickstart: align a handful of simulated reads with the GenAx
 * accelerator model and print the SAM output.
 *
 *   $ ./quickstart
 *
 * Five-minute tour of the public API: generate a reference, simulate
 * reads, build a GenAxSystem, align, emit SAM, read the performance
 * report.
 */

#include <iostream>

#include "genax/system.hh"
#include "io/sam.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"

using namespace genax;

int
main()
{
    // 1. A small synthetic reference genome (stands in for GRCh38).
    RefGenConfig rcfg;
    rcfg.length = 100000;
    rcfg.seed = 42;
    const Seq ref = generateReference(rcfg);

    // 2. Illumina-like 101 bp reads with known ground truth.
    ReadSimConfig rs;
    rs.numReads = 20;
    rs.seed = 7;
    const auto sim = simulateReads(ref, rs);

    // 3. The GenAx accelerator model: seeding lanes + SillaX lanes.
    GenAxConfig cfg;
    cfg.k = 10;          // k-mer size scaled to the small genome
    cfg.editBound = 16;  // SillaX edit bound
    cfg.segmentCount = 4;
    cfg.segmentOverlap = 160;
    GenAxSystem genax(ref, cfg);

    std::vector<Seq> reads;
    for (const auto &r : sim)
        reads.push_back(r.seq);
    const auto mappings = genax.alignAll(reads);

    // 4. Emit SAM.
    SamWriter sam(std::cout, {{"synthetic", ref.size()}});
    for (size_t i = 0; i < mappings.size(); ++i) {
        const Mapping &m = mappings[i];
        SamRecord rec;
        rec.qname = sim[i].name;
        if (!m.mapped) {
            rec.flag = kSamUnmapped;
        } else {
            rec.flag = m.reverse ? kSamReverse : 0;
            rec.rname = "synthetic";
            rec.pos = m.pos;
            rec.mapq = m.mapq;
            rec.cigar = m.cigar.strSamM();
            rec.score = m.score;
            rec.editDistance =
                static_cast<i32>(m.cigar.editDistance());
        }
        rec.seq = decode(m.reverse ? reverseComplement(sim[i].seq)
                                   : sim[i].seq);
        sam.write(rec);
    }

    // 5. The performance model that accompanies the alignment.
    const GenAxPerf &perf = genax.perf();
    std::cerr << "aligned " << perf.reads << " reads, "
              << perf.exactReads << " via the exact-match fast path, "
              << perf.extensionJobs << " SillaX extension jobs\n"
              << "modelled throughput: "
              << perf.readsPerSecond() / 1e3 << " KReads/s\n";
    return 0;
}
