/**
 * @file
 * Long-read scaling: why Silla's string independence matters.
 *
 *   $ ./longread_scaling
 *
 * The paper motivates Silla with the arrival of long-read platforms
 * (PacBio, Oxford Nanopore): Smith-Waterman arrays need O(N)
 * processing elements and classic Levenshtein automata O(K*N)
 * states, while Silla needs O(K^2) states regardless of read length
 * and processes a pair in O(N) cycles. This example sweeps read
 * length from Illumina-short to long-read scale and reports both
 * scaling laws, then shows the composable-tile path (Section IV-D)
 * to the higher edit bounds long reads need.
 */

#include <cstdio>

#include "common/rng.hh"
#include "silla/silla.hh"
#include "silla/silla_traceback.hh"
#include "sillax/tile.hh"

using namespace genax;

namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

Seq
mutate(Rng &rng, const Seq &s, unsigned edits)
{
    Seq out = s;
    for (unsigned e = 0; e < edits && !out.empty(); ++e) {
        const u64 pos = rng.below(out.size());
        switch (rng.below(3)) {
          case 0:
            out[pos] = static_cast<Base>((out[pos] + 1 + rng.below(3)) & 3);
            break;
          case 1:
            out.insert(out.begin() + static_cast<i64>(pos),
                       static_cast<Base>(rng.below(4)));
            break;
          default:
            out.erase(out.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return out;
}

} // namespace

int
main()
{
    Rng rng(2718);
    const Scoring sc;

    std::printf("%-10s %-8s %-12s %-14s %-14s %-12s\n", "read_len",
                "edits", "silla_cycles", "silla_states",
                "lev_aut_states", "sw_pe_count");
    const u32 k = 24;
    SillaTraceback machine(k, sc);
    for (u64 len : {101u, 400u, 1000u, 4000u, 10000u}) {
        const Seq ref = randomSeq(rng, len + k);
        const unsigned edits = static_cast<unsigned>(len / 200 + 2);
        const Seq read = mutate(rng, randomSeq(rng, len), edits);
        // Align the mutated read against its own source region.
        const Seq src = mutate(rng, ref, 0);
        (void)src;
        const auto out = machine.align(ref, read);
        std::printf("%-10llu %-8u %-12llu %-14llu %-14llu %-12llu\n",
                    static_cast<unsigned long long>(len), edits,
                    static_cast<unsigned long long>(
                        out.stats.streamCycles),
                    static_cast<unsigned long long>(
                        SillaStateCount::collapsed(k)),
                    static_cast<unsigned long long>(
                        SillaStateCount::levenshtein(k, len)),
                    static_cast<unsigned long long>(len)); // SW array
    }
    std::printf("\nSilla: states fixed at O(K^2); cycles grow "
                "linearly with N.\n");
    std::printf("Levenshtein automaton states and Smith-Waterman PE "
                "arrays grow with N.\n\n");

    // Composable tiles: long reads accumulate more edits, so a
    // higher bound is configured by ganging tiles (Section IV-D).
    TileArray tiles(24, 2, 2);
    std::printf("tile array 2x2 of K=24 tiles:\n");
    tiles.configure({});
    std::printf("  short-read mode: %zu engines, K=%u each\n",
                tiles.engines().size(), tiles.engines()[0].editBound);
    tiles.configure({2});
    u32 big = 0;
    for (const auto &e : tiles.engines())
        big = std::max(big, e.editBound);
    std::printf("  long-read mode: %zu engines, max K=%u\n",
                tiles.engines().size(), big);

    // Demonstrate the long-read bound in action.
    const u64 len = 5000;
    const Seq ref = randomSeq(rng, len + 128);
    Seq read(ref.begin(), ref.begin() + static_cast<i64>(len));
    // Indel-heavy noise (Nanopore-style): ~35 insertions and ~35
    // deletions exceed one tile's per-kind budget of 24.
    for (int e = 0; e < 35; ++e) {
        read.insert(read.begin() + static_cast<i64>(rng.below(read.size())),
                    static_cast<Base>(rng.below(4)));
        read.erase(read.begin() + static_cast<i64>(rng.below(read.size())));
    }
    SillaTraceback small(24, sc), composed(big, sc);
    const auto s = small.align(ref, read);
    const auto c = composed.align(ref, read);
    std::printf("\n5 kbp read with ~70 indel errors: K=24 tile clips "
                "to score %d; composed K=%u engine reaches score %d "
                "(%llu edits recovered)\n",
                s.score, big, c.score,
                static_cast<unsigned long long>(
                    c.cigar.editDistance()));
    return 0;
}
